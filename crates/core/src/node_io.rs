//! Remote node I/O helpers: validated reads and allocation+write of inner
//! and leaf nodes.

use art_core::hash::prefix_hash64;
use art_core::layout::{InnerNode, LayoutError, LeafNode, NodeStatus};
use art_core::NodeKind;
use dm_sim::{DmClient, RemotePtr};

use crate::error::SphinxError;

pub(crate) const IO_RETRY_LIMIT: usize = 64;

/// Reads and decodes an inner node of known kind (one round trip).
pub(crate) fn read_inner(
    client: &mut DmClient,
    ptr: RemotePtr,
    kind: NodeKind,
) -> Result<InnerNode, SphinxError> {
    let bytes = client.read(ptr, InnerNode::byte_size(kind))?;
    let node = InnerNode::decode(&bytes)?;
    if node.header.kind != kind {
        // A type switch raced with our read of a stale pointer: the caller
        // sees Invalid status and retries through the hash table.
        return Ok(node);
    }
    Ok(node)
}

/// Reads and decodes a leaf, retrying torn reads (checksum mismatches from
/// concurrent in-place updates) and extending the read if the leaf is
/// larger than the hint.
pub(crate) fn read_leaf(
    client: &mut DmClient,
    ptr: RemotePtr,
    hint: usize,
    checksum_retries: &mut u64,
) -> Result<LeafNode, SphinxError> {
    let mut read_len = hint.max(64);
    for _ in 0..IO_RETRY_LIMIT {
        let bytes = client.read(ptr, read_len)?;
        // The first word tells us the true size; extend if needed.
        let word0 = u64::from_le_bytes(bytes[0..8].try_into().expect("8 bytes"));
        let units = ((word0 >> 8) & 0xFF) as usize;
        let true_len = units.max(1) * 64;
        if true_len > read_len {
            read_len = true_len;
            continue;
        }
        match LeafNode::decode(&bytes) {
            Ok(leaf) => return Ok(leaf),
            Err(LayoutError::ChecksumMismatch { .. }) | Err(LayoutError::TruncatedNode { .. }) => {
                // Torn read under a concurrent writer: retry.
                *checksum_retries += 1;
                client.advance_clock(200);
                std::thread::yield_now();
            }
            Err(e) => return Err(e.into()),
        }
    }
    Err(SphinxError::RetriesExhausted { op: "leaf read" })
}

/// Allocates and writes a fresh leaf on the MN chosen by consistent
/// hashing of the key; returns its address.
pub(crate) fn write_new_leaf(
    client: &mut DmClient,
    key: &[u8],
    value: &[u8],
) -> Result<RemotePtr, SphinxError> {
    let leaf = LeafNode::new(key.to_vec(), value.to_vec());
    let bytes = leaf.encode();
    let mn = client.place(prefix_hash64(key));
    let ptr = client.alloc(mn, bytes.len())?;
    client.write(ptr, &bytes)?;
    Ok(ptr)
}

/// Allocates and writes a fresh inner node on the MN chosen by consistent
/// hashing of its full prefix; returns its address.
///
/// The hot insert paths batch this write with the companion leaf write
/// instead (see `write_ops`); kept for cold paths and tests.
#[allow(dead_code)]
pub(crate) fn write_new_inner(
    client: &mut DmClient,
    node: &InnerNode,
    prefix: &[u8],
) -> Result<RemotePtr, SphinxError> {
    let bytes = node.encode();
    let mn = client.place(prefix_hash64(prefix));
    let ptr = client.alloc(mn, bytes.len())?;
    client.write(ptr, &bytes)?;
    Ok(ptr)
}

/// Marks a retired node `Invalid` given its last known header control word
/// (caller holds the node lock, so a plain store is safe; we use a store
/// of the full control word with the status replaced).
pub(crate) fn invalidate_inner(
    client: &mut DmClient,
    ptr: RemotePtr,
    node: &InnerNode,
) -> Result<(), SphinxError> {
    let word = node.header.control_with_status(NodeStatus::Invalid);
    client.write_u64(ptr, word)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_sim::{ClusterConfig, DmCluster};

    fn client() -> (DmCluster, DmClient) {
        let c = DmCluster::new(ClusterConfig::default());
        let cl = c.client(0);
        (c, cl)
    }

    #[test]
    fn leaf_roundtrip_via_io() {
        let (_c, mut cl) = client();
        let ptr = write_new_leaf(&mut cl, b"key", b"value").unwrap();
        let mut retries = 0;
        let leaf = read_leaf(&mut cl, ptr, 128, &mut retries).unwrap();
        assert_eq!(leaf.key, b"key");
        assert_eq!(leaf.value, b"value");
        assert_eq!(retries, 0);
    }

    #[test]
    fn big_leaf_needs_second_read() {
        let (_c, mut cl) = client();
        let value = vec![7u8; 500];
        let ptr = write_new_leaf(&mut cl, b"key", &value).unwrap();
        let before = cl.stats().round_trips;
        let mut retries = 0;
        let leaf = read_leaf(&mut cl, ptr, 128, &mut retries).unwrap();
        assert_eq!(leaf.value, value);
        assert_eq!(cl.stats().round_trips - before, 2, "hint read + full read");
    }

    #[test]
    fn inner_roundtrip_via_io() {
        let (_c, mut cl) = client();
        let node = InnerNode::new(NodeKind::Node16, b"pre");
        let ptr = write_new_inner(&mut cl, &node, b"pre").unwrap();
        let back = read_inner(&mut cl, ptr, NodeKind::Node16).unwrap();
        assert_eq!(back, node);
    }

    #[test]
    fn invalidate_marks_status() {
        let (_c, mut cl) = client();
        let node = InnerNode::new(NodeKind::Node4, b"x");
        let ptr = write_new_inner(&mut cl, &node, b"x").unwrap();
        invalidate_inner(&mut cl, ptr, &node).unwrap();
        let back = read_inner(&mut cl, ptr, NodeKind::Node4).unwrap();
        assert_eq!(back.header.status, NodeStatus::Invalid);
    }
}
