//! The per-worker client: deepest-node location and point lookups.

use std::sync::Arc;

use art_core::hash::{fp12, prefix_hash42, prefix_hash64};
use art_core::key::{common_prefix_len, MAX_KEY_LEN};
use art_core::layout::{HashEntry, InnerNode, LeafNode, NodeStatus, Slot};
use dm_sim::{ClientStats, DmClient, RemotePtr, RetryPolicy, Transport};
use node_engine::{read_inner_consistent, read_validated_leaf, LeafReadStats};
use obs::{OpKind, Phase, Recorder};
use race_hash::{FoundEntry, RaceTable};

use crate::config::{CacheMode, SphinxConfig};
use crate::error::SphinxError;
use crate::stats::OpStats;

/// An install whose CAS landed while the target node was mid-type-switch
/// ([`node_engine::Install::Ambiguous`]): the installed word may or may
/// not survive in the type-switched copy, so the regions it references can
/// be neither used nor freed until a **deferred ownership re-probe** — a
/// fresh lookup at a later operation boundary — decides whether the tree
/// adopted the word.
#[derive(Debug)]
pub(crate) struct AmbiguousProbe {
    /// The key whose lookup path decides adoption.
    pub key: Vec<u8>,
    /// Failed resolution attempts so far (abandoned past a bound).
    pub attempts: u32,
    /// Which install produced the ambiguity.
    pub kind: ProbeKind,
}

/// The site-specific shape of an ambiguous install (see the resolution
/// rules in `SphinxClient::apply_probe_evidence`).
#[derive(Debug, Clone, Copy)]
pub(crate) enum ProbeKind {
    /// Out-of-place update: `fresh` may have replaced the slot word
    /// pointing at `old`.
    SwapLeaf {
        /// The leaf the replaced slot pointed at.
        old: RemotePtr,
        /// The replacement leaf.
        fresh: RemotePtr,
        /// `fresh`'s encoded size, for retirement accounting.
        fresh_bytes: u64,
    },
    /// Leaf/path split: a new Node4 at `node` (holding a fresh leaf at
    /// `leaf` plus the re-hung old occupant) may have replaced the slot
    /// word pointing at `old`. Adoption keeps everything live.
    NewInner {
        /// The new inner node.
        node: RemotePtr,
        /// `node`'s encoded size.
        node_bytes: u64,
        /// The fresh leaf linked inside it.
        leaf: RemotePtr,
        /// `leaf`'s encoded size.
        leaf_bytes: u64,
        /// What the replaced slot pointed at (leaf or inner child).
        old: RemotePtr,
    },
    /// Type switch whose parent-slot swing was ambiguous: `grown` (holding
    /// `leaf`) may have replaced `original` in the parent.
    TypeSwitch {
        /// The grown replacement node.
        grown: RemotePtr,
        /// The fresh leaf folded into the grown node.
        leaf: RemotePtr,
        /// The node that was being switched (left unlocked and live).
        original: RemotePtr,
        /// `original`'s kind, for the retirement re-read.
        orig_kind: art_core::NodeKind,
        /// `original`'s full-prefix length, for the INHT heal.
        plen: usize,
    },
}

/// Where a located leaf hangs off its parent inner node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SlotRef {
    /// Child slot at this index.
    Child(usize),
    /// The node's value slot (key == node prefix).
    Value,
}

/// What the descent from the entry node ended at.
#[derive(Debug)]
pub(crate) enum Outcome {
    /// Reached a leaf (whose key may or may not equal the search key).
    Leaf {
        /// Which slot of `Descent::node` points at the leaf.
        slot_ref: SlotRef,
        /// The pointing slot.
        slot: Slot,
        /// The decoded leaf.
        leaf: LeafNode,
    },
    /// The key terminates exactly at the node, which has no value slot.
    NoValueSlot,
    /// The node has no child for the dispatch byte.
    Empty {
        /// The dispatch byte with no child.
        byte: u8,
    },
    /// The child inner node's prefix diverges from the key inside its
    /// compressed path; `sample` is a leaf from its subtree used to learn
    /// the actual prefix bytes.
    Divergent {
        /// Slot index of the divergent child in `Descent::node`.
        slot_idx: usize,
        /// The child slot.
        slot: Slot,
        /// The decoded divergent child.
        child: InnerNode,
        /// Any leaf under the child (shares the child's full prefix).
        sample: LeafNode,
    },
}

/// A completed location attempt: the deepest inner node whose full prefix
/// prefixes the key, and what lies below it.
#[derive(Debug)]
pub(crate) struct Descent {
    /// Prefix length of the node the hash-table lookup landed on.
    pub entry_len: usize,
    /// The deepest matching inner node.
    pub node: InnerNode,
    /// Its address.
    pub node_ptr: RemotePtr,
    /// What the final dispatch found.
    pub outcome: Outcome,
}

#[allow(clippy::large_enum_variant)] // Retry is transient; Done is immediately unpacked
pub(crate) enum DescentResult {
    Done(Descent),
    /// A node marked `Invalid` (mid type-switch) was encountered: retry
    /// through a fresh hash-table lookup.
    Retry,
}

/// A per-worker Sphinx client.
///
/// Owns a [`DmClient`] (and therefore a virtual clock and network
/// statistics) plus per-MN hash-table handles, and shares its compute
/// node's Succinct Filter Cache. Created via
/// [`SphinxIndex::client`](crate::SphinxIndex::client).
#[derive(Debug)]
pub struct SphinxClient {
    pub(crate) dm: DmClient,
    pub(crate) tables: Vec<RaceTable>,
    pub(crate) filter: Arc<sfc::FilterCache>,
    pub(crate) config: SphinxConfig,
    pub(crate) stats: OpStats,
    pub(crate) obs: Recorder,
    /// Epoch-based reclamation handle (limbo list + slot in the index's
    /// shared [`reclaim::ReclaimDomain`]).
    pub(crate) reclaim: reclaim::ReclaimHandle,
    /// Ambiguous installs awaiting their deferred ownership re-probe.
    pub(crate) ambiguous: Vec<AmbiguousProbe>,
    // The shared bounded-retry budget (see node_engine::RetryPolicy for
    // the rationale behind the defaults). Generous op_retries: retries
    // wait out concurrent structural changes (type switches, splits), and
    // on a host with fewer cores than workers a lock holder may need many
    // scheduling rounds while waiters spin through cheap yield-retries.
    pub(crate) retry: RetryPolicy,
    /// Cumulative pipelined-execution counters (see
    /// [`SphinxClient::get_many_pipelined`]).
    pub(crate) pipeline: node_engine::PipelineStats,
    /// Causal-trace sampler (see [`obs::Tracer`]; inert without the
    /// `telemetry` feature — every lease returns `None`).
    pub(crate) tracer: obs::Tracer,
    /// Trace context of the blocking op currently in flight.
    #[cfg_attr(not(feature = "telemetry"), allow(dead_code))]
    pub(crate) trace_cur: Option<Box<obs::OpTrace>>,
    /// Reusable buffer for transport-event windows (no per-op allocation).
    #[cfg_attr(not(feature = "telemetry"), allow(dead_code))]
    pub(crate) trace_scratch: Vec<dm_sim::trace::TransportEvent>,
    /// Transport-ring mark taken at the current op's begin.
    #[cfg_attr(not(feature = "telemetry"), allow(dead_code))]
    pub(crate) trace_mark: u64,
}

impl SphinxClient {
    pub(crate) fn new(
        dm: DmClient,
        tables: Vec<RaceTable>,
        filter: Arc<sfc::FilterCache>,
        config: SphinxConfig,
        reclaim: reclaim::ReclaimHandle,
    ) -> Self {
        #[cfg_attr(not(feature = "telemetry"), allow(unused_mut))]
        let mut client = SphinxClient {
            dm,
            tables,
            filter,
            config,
            stats: OpStats::default(),
            obs: Recorder::new(),
            reclaim,
            ambiguous: Vec::new(),
            retry: RetryPolicy::default(),
            pipeline: node_engine::PipelineStats::default(),
            tracer: obs::Tracer::new(),
            trace_cur: None,
            trace_scratch: Vec::new(),
            trace_mark: 0,
        };
        #[cfg(feature = "telemetry")]
        client.dm.trace_set_enabled(client.tracer.is_active());
        client
    }

    /// Index-level statistics for this worker.
    pub fn op_stats(&self) -> OpStats {
        self.stats
    }

    /// Network-level statistics for this worker.
    pub fn net_stats(&self) -> ClientStats {
        self.dm.stats()
    }

    /// This worker's virtual clock, nanoseconds.
    pub fn clock_ns(&self) -> u64 {
        self.dm.clock_ns()
    }

    /// Resets the virtual clock (e.g. at a benchmark phase barrier).
    pub fn set_clock_ns(&mut self, ns: u64) {
        self.dm.set_clock_ns(ns);
    }

    /// Attaches a deterministic-schedule participant handle to this
    /// worker's transport (see [`dm_sim::Schedule`]).
    pub fn attach_schedule(&mut self, handle: dm_sim::ScheduleHandle) {
        self.dm.attach_schedule(handle);
    }

    /// Consumes one scheduling step and returns its number (a virtual
    /// timestamp); `None` when no schedule is attached.
    pub fn schedule_tick(&mut self) -> Option<u64> {
        self.dm.schedule_tick()
    }

    /// The shared per-CN Succinct Filter Cache.
    pub fn filter_handle(&self) -> &Arc<sfc::FilterCache> {
        &self.filter
    }

    /// Cheap SFC gauges for time-series samplers:
    /// `[lookups, hits, frozen_len, delta_len]`. Reads the shared filter's
    /// atomic counters — no verbs, no allocation — so a harness can poll
    /// it at op boundaries without perturbing the run.
    pub fn sfc_gauges(&self) -> [u64; 4] {
        let s = self.filter.stats();
        [s.lookups, s.hits, s.frozen_len, s.delta_len]
    }

    /// A snapshot of this worker's telemetry: per-op phase attribution,
    /// latency histograms, the flight recorder, and the Sphinx/INHT domain
    /// counters folded in as named counters.
    ///
    /// The per-CN filter (SFC) statistics are shared across workers and
    /// deliberately *not* included — collect them once per compute node via
    /// [`SphinxIndex::sfc_telemetry`](crate::SphinxIndex::sfc_telemetry) to
    /// avoid double counting.
    pub fn telemetry(&self) -> obs::Registry {
        let mut reg = self.obs.registry();
        let s = &self.stats;
        reg.add("sphinx.fp_retries", s.false_positive_retries);
        reg.add("sphinx.invalid_node_retries", s.invalid_node_retries);
        reg.add("sphinx.checksum_retries", s.checksum_retries);
        reg.add("sphinx.extended_leaf_reads", s.extended_leaf_reads);
        reg.add("sphinx.filter_first_hits", s.filter_first_hits);
        reg.add("sphinx.entry_misses", s.entry_misses);
        reg.add("sphinx.filter_refreshes", s.filter_refreshes);
        let r = self.reclaim.stats();
        reg.add("reclaim.retired_count", r.retired_count);
        reg.add("reclaim.retired_bytes", r.retired_bytes);
        reg.add("reclaim.freed_count", r.freed_count);
        reg.add("reclaim.freed_bytes", r.freed_bytes);
        reg.add("reclaim.limbo_depth", self.reclaim.limbo_len() as u64);
        reg.add("reclaim.limbo_bytes", self.reclaim.limbo_bytes());
        reg.add("reclaim.scans", r.scans);
        reg.add("reclaim.epoch_advances", r.epoch_advances);
        reg.add("reclaim.errors", r.errors);
        reg.add("reclaim.epoch_lag_le_1", r.lag_le_1);
        reg.add("reclaim.epoch_lag_le_2", r.lag_le_2);
        reg.add("reclaim.epoch_lag_le_4", r.lag_le_4);
        reg.add("reclaim.epoch_lag_gt_4", r.lag_gt_4);
        for t in &self.tables {
            let c = t.counters();
            reg.add("inht.searches", c.searches);
            reg.add("inht.stale_retries", c.stale_retries);
            reg.add("inht.cas_races", c.cas_races);
            reg.add("inht.splits", c.splits);
            reg.add("inht.refreshes", c.refreshes);
        }
        let p = &self.pipeline;
        reg.add("pipeline.ops", p.ops);
        reg.add("pipeline.flushes", p.flushes);
        reg.add("pipeline.fused_batches", p.fused_batches);
        reg.add("pipeline.stalls", p.stalls);
        for (bucket, name) in p.depth_hist.iter().zip([
            "pipeline.depth_le_1",
            "pipeline.depth_le_2",
            "pipeline.depth_le_4",
            "pipeline.depth_le_8",
            "pipeline.depth_le_16",
            "pipeline.depth_gt_16",
        ]) {
            reg.add(name, *bucket);
        }
        reg.pipeline.ops = p.ops;
        reg.pipeline.flushes = p.flushes;
        reg.pipeline.fused_batches = p.fused_batches;
        reg.pipeline.stalls = p.stalls;
        reg.pipeline.depth_hist = p.depth_hist;
        for (tag, agg) in &p.by_tag {
            if let Some(phase) = obs::Phase::ALL.get(*tag as usize) {
                reg.add(&format!("pipeline.rts.{}", phase.name()), agg.round_trips);
                let t = reg
                    .pipeline
                    .by_tag
                    .entry(phase.name().to_string())
                    .or_default();
                t.batches += agg.batches;
                t.round_trips += agg.round_trips;
                t.verbs += agg.verbs;
                t.bytes += agg.bytes;
            }
        }
        reg
    }

    // ------------------------------------------------------------------
    // Causal tracing (see `obs::trace`).
    // ------------------------------------------------------------------

    /// Configures causal-trace sampling for this worker: keep full traces
    /// for the `tail_k` slowest / most-retried ops plus every
    /// `head_every`-th op (0 = head sample off). `(0, 0)` disables tracing
    /// entirely — no lease, no transport-event recording. No-op without
    /// the `telemetry` feature.
    pub fn set_trace_sampling(&mut self, head_every: u64, tail_k: usize) {
        #[cfg(feature = "telemetry")]
        {
            self.tracer.configure(head_every, tail_k);
            self.dm.trace_set_enabled(self.tracer.is_active());
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = (head_every, tail_k);
    }

    /// Sets the worker id stamped into the high half of this worker's
    /// trace ids (see [`obs::trace::TraceId`]).
    pub fn set_trace_worker(&mut self, worker: u32) {
        #[cfg(feature = "telemetry")]
        self.tracer.set_worker(worker);
        #[cfg(not(feature = "telemetry"))]
        let _ = worker;
    }

    /// Drains the traces retained by this worker's sampler (sorted by
    /// id). Empty without the `telemetry` feature.
    pub fn take_traces(&mut self) -> Vec<obs::OpTrace> {
        #[cfg(feature = "telemetry")]
        {
            self.tracer.take_traces()
        }
        #[cfg(not(feature = "telemetry"))]
        Vec::new()
    }

    // ------------------------------------------------------------------
    // Reclamation plumbing.
    // ------------------------------------------------------------------

    /// This worker's reclamation counters.
    pub fn reclaim_stats(&self) -> reclaim::ReclaimStats {
        self.reclaim.stats()
    }

    /// Entries waiting out their grace period on this worker.
    pub fn reclaim_limbo_len(&self) -> usize {
        self.reclaim.limbo_len()
    }

    /// Runs one reclamation scan (slot refresh + epoch advance + grace
    /// check), off the operation path.
    pub fn reclaim_scan(&mut self) {
        let SphinxClient { dm, reclaim, .. } = self;
        reclaim.scan(dm);
    }

    /// Scans until this worker's limbo list drains or `max_rounds` scans
    /// elapse; returns whether it drained. With other registered workers
    /// their slots must advance too — quiesce all workers round-robin.
    pub fn reclaim_quiesce(&mut self, max_rounds: usize) -> bool {
        let SphinxClient { dm, reclaim, .. } = self;
        reclaim.quiesce(dm, max_rounds)
    }

    /// Withdraws this worker from the reclamation domain so its (now
    /// permanently stale) epoch pin stops gating other workers' frees.
    pub fn reclaim_deregister(&mut self) {
        let SphinxClient { dm, reclaim, .. } = self;
        reclaim.deregister(dm);
    }

    /// The operation-exit maintenance step: resolve pending ambiguous
    /// probes, run the amortized reclamation scan when due, fold the
    /// filter cache's pending delta into a fresh frozen generation when
    /// its rebuild threshold is armed (all attributed to
    /// [`Phase::Maintenance`]), and close the telemetry span.
    pub(crate) fn op_exit(&mut self) {
        if !self.ambiguous.is_empty() {
            self.obs_phase(Phase::Maintenance);
            self.probe_ambiguous();
        }
        if self.reclaim.scan_due() {
            self.obs_phase(Phase::Maintenance);
        }
        if self.config.mode == CacheMode::FilterCache && self.filter.rebuild_due() {
            // Generation rebuild rides the same amortized maintenance
            // slot as the reclamation scan: CN-local CPU off the lookup
            // critical path, never a remote round trip.
            self.obs_phase(Phase::Maintenance);
            self.filter.maintain();
        }
        {
            let SphinxClient { dm, reclaim, .. } = self;
            reclaim.unpin(dm);
        }
        self.obs_end();
    }

    // ------------------------------------------------------------------
    // Telemetry plumbing. The recorder never touches the clock or the
    // transport counters — it only snapshots them at phase boundaries.
    // ------------------------------------------------------------------

    #[inline]
    pub(crate) fn obs_begin(&mut self, kind: OpKind) {
        self.reclaim.pin();
        self.obs.begin(kind, self.dm.stats(), self.dm.clock_ns());
        #[cfg(feature = "telemetry")]
        {
            let now = self.dm.clock_ns();
            if let Some(mut t) = self.tracer.lease(kind, now) {
                t.pin(now);
                self.trace_mark = self.dm.trace_mark();
                self.trace_cur = Some(t);
            }
        }
    }

    #[inline]
    pub(crate) fn obs_phase(&mut self, phase: Phase) {
        self.obs.phase(phase, self.dm.stats(), self.dm.clock_ns());
        #[cfg(feature = "telemetry")]
        if let Some(t) = self.trace_cur.as_mut() {
            t.phase(phase, self.dm.clock_ns());
        }
    }

    /// Marks one failed attempt on both the metrics span and the causal
    /// trace.
    #[inline]
    pub(crate) fn obs_retry(&mut self) {
        self.obs.retry();
        #[cfg(feature = "telemetry")]
        if let Some(t) = self.trace_cur.as_mut() {
            t.retry(self.dm.clock_ns());
        }
    }

    #[inline]
    pub(crate) fn obs_end(&mut self) {
        let now = self.dm.clock_ns();
        #[cfg(feature = "telemetry")]
        if let Some(mut t) = self.trace_cur.take() {
            t.unpin(now);
            self.trace_scratch.clear();
            t.complete = self
                .dm
                .trace_collect_since(self.trace_mark, &mut self.trace_scratch);
            let id = self.tracer.finish(t, now, &self.trace_scratch);
            self.obs.end_traced(self.dm.stats(), now, id);
            return;
        }
        self.obs.end(self.dm.stats(), now);
    }

    /// Reads and validates a leaf, attributing the round trips to
    /// [`Phase::LeafRead`] (restoring the caller's phase afterwards) and
    /// folding the engine's I/O counters into [`OpStats`].
    pub(crate) fn read_leaf(
        &mut self,
        addr: RemotePtr,
        hint: usize,
    ) -> Result<LeafNode, SphinxError> {
        let prev = self.obs.current_phase();
        self.obs_phase(Phase::LeafRead);
        let mut io = LeafReadStats::default();
        let res = read_validated_leaf(&mut self.dm, addr, hint, &self.retry, &mut io);
        self.stats.checksum_retries += io.checksum_retries;
        self.stats.extended_leaf_reads += io.extended_reads;
        if let Some(p) = prev {
            self.obs_phase(p);
        }
        Ok(res?)
    }

    /// Point lookup.
    ///
    /// # Errors
    ///
    /// Returns [`SphinxError::KeyTooLong`] for oversized keys and
    /// substrate errors otherwise.
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, SphinxError> {
        self.stats.gets += 1;
        self.obs_begin(OpKind::Get);
        let r = self.locate(key);
        self.op_exit();
        let d = r?;
        Ok(match d.outcome {
            Outcome::Leaf { leaf, .. } => {
                (leaf.key == key && leaf.status != NodeStatus::Invalid).then_some(leaf.value)
            }
            _ => None,
        })
    }

    /// Whether `key` is present.
    ///
    /// # Errors
    ///
    /// Same as [`SphinxClient::get`].
    pub fn contains_key(&mut self, key: &[u8]) -> Result<bool, SphinxError> {
        Ok(self.get(key)?.is_some())
    }

    // ------------------------------------------------------------------
    // Deepest-node location (§III-B, §IV "Search").
    // ------------------------------------------------------------------

    pub(crate) fn locate(&mut self, key: &[u8]) -> Result<Descent, SphinxError> {
        if key.len() > MAX_KEY_LEN {
            return Err(SphinxError::KeyTooLong { len: key.len() });
        }
        let mut max_len = key.len();
        for _ in 0..self.retry.op_retries {
            let (ptr, node, len) = self.entry_node(key, max_len)?;
            match self.descend(key, ptr, node, len)? {
                DescentResult::Done(d) => {
                    // False-positive detection (§III-B): if the leaf we
                    // reached shares less of the key than the entry node's
                    // prefix length, the fp₂ *and* the 42-bit prefix hash
                    // collided; retry with a shorter prefix.
                    let observed = match &d.outcome {
                        Outcome::Leaf { leaf, .. } => Some(common_prefix_len(key, &leaf.key)),
                        Outcome::Divergent { sample, .. } => {
                            Some(common_prefix_len(key, &sample.key))
                        }
                        _ => None,
                    };
                    if let Some(cpl) = observed {
                        if cpl < d.entry_len {
                            self.stats.false_positive_retries += 1;
                            self.obs_retry();
                            max_len = d.entry_len.saturating_sub(1);
                            continue;
                        }
                    }
                    return Ok(d);
                }
                DescentResult::Retry => {
                    self.stats.invalid_node_retries += 1;
                    self.obs_retry();
                    self.obs_phase(Phase::Retry);
                    self.dm.backoff(&self.retry);
                }
            }
        }
        Err(SphinxError::RetriesExhausted { op: "locate" })
    }

    /// Finds a validated inner node for the deepest available prefix of
    /// `key` no longer than `max_len`.
    pub(crate) fn entry_node(
        &mut self,
        key: &[u8],
        max_len: usize,
    ) -> Result<(RemotePtr, InnerNode, usize), SphinxError> {
        match self.config.mode {
            CacheMode::FilterCache => {
                let mut budget = self.retry.io_retries;
                let mut l = max_len;
                let mut first = true;
                loop {
                    self.obs_phase(Phase::SfcProbe);
                    let cand = self.filter.deepest_hit(key, l);
                    if l > 0 {
                        self.obs.incr(if cand > 0 {
                            "sfc.probe_hit"
                        } else {
                            "sfc.probe_miss"
                        });
                    }
                    self.obs_phase(Phase::InhtLookup);
                    if let Some((ptr, node)) = self.fetch_validated(key, cand)? {
                        if first {
                            self.stats.filter_first_hits += 1;
                        }
                        return Ok((ptr, node, cand));
                    }
                    self.stats.entry_misses += 1;
                    first = false;
                    if cand > 0 {
                        // The filter claimed `key[..cand]` exists but the
                        // INHT disproved it: an observed false positive.
                        self.filter.record_false_positive();
                    }
                    if cand == 0 {
                        // Even the root hash entry failed validation. Under
                        // contention that is a transient gap, not
                        // corruption: a concurrent type switch of the root
                        // invalidates the old node before the repaired
                        // entry is published, and a reader landing in that
                        // window sees no valid entry at any prefix length.
                        // Back off and retake the whole ladder; only a
                        // persistent gap is corruption.
                        if budget == 0 {
                            return Err(SphinxError::Corrupt {
                                what: "root hash entry missing",
                            });
                        }
                        budget -= 1;
                        self.obs_retry();
                        self.obs_phase(Phase::Retry);
                        self.dm.backoff(&self.retry);
                        l = max_len;
                        continue;
                    }
                    l = cand - 1;
                }
            }
            CacheMode::InhtOnly => {
                self.obs_phase(Phase::InhtLookup);
                self.entry_node_parallel(key, max_len)
            }
        }
    }

    /// One INHT lookup + node fetch + validation for an exact prefix
    /// length.
    fn fetch_validated(
        &mut self,
        key: &[u8],
        len: usize,
    ) -> Result<Option<(RemotePtr, InnerNode)>, SphinxError> {
        let prefix = &key[..len];
        let h = prefix_hash64(prefix);
        let mn = self.dm.place(h) as usize;
        let found = self.tables[mn].search(&mut self.dm, h)?;
        self.validate_candidates(&found, key, len)
    }

    /// Checks hash-entry candidates against the prefix fingerprint, then
    /// fetches and validates the referenced node.
    fn validate_candidates(
        &mut self,
        found: &[FoundEntry],
        key: &[u8],
        len: usize,
    ) -> Result<Option<(RemotePtr, InnerNode)>, SphinxError> {
        let prefix = &key[..len];
        let fp = fp12(prefix);
        let h42 = prefix_hash42(prefix);
        for e in found {
            let Some(he) = HashEntry::decode(e.word) else {
                continue;
            };
            if he.fp != fp {
                continue;
            }
            let node = read_inner_consistent(&mut self.dm, he.addr, he.kind)?;
            if node.header.status == NodeStatus::Invalid
                || node.header.kind != he.kind
                || node.header.prefix_len as usize != len
                || node.header.prefix_hash42 != h42
            {
                // The 12-bit fingerprint matched but the node did not: a
                // genuine fp collision or a stale/retired entry.
                self.obs.incr("inht.fp_collision");
                continue;
            }
            self.obs.incr("inht.hit");
            return Ok(Some((he.addr, node)));
        }
        Ok(None)
    }

    /// The INHT-only ablation: read the bucket pairs of *every* prefix of
    /// `key` in one doorbell-batched round trip and use the deepest valid
    /// entry (§III-A without the filter cache).
    fn entry_node_parallel(
        &mut self,
        key: &[u8],
        max_len: usize,
    ) -> Result<(RemotePtr, InnerNode, usize), SphinxError> {
        let mut budget = self.retry.io_retries;
        'retry: for _ in 0..self.retry.op_retries {
            let mut lookups = Vec::with_capacity(max_len + 1);
            let mut reads = Vec::with_capacity(max_len + 1);
            for l in 0..=max_len {
                let h = prefix_hash64(&key[..l]);
                let mn = self.dm.place(h) as usize;
                let base = self.tables[mn].bucket_pair_ptr(h)?;
                reads.push((base, RaceTable::pair_len()));
                lookups.push((l, h, mn, base));
            }
            let results = self.dm.read_many(&reads)?;
            for (i, &(l, h, mn, base)) in lookups.iter().enumerate().rev() {
                let bytes = &results[i];
                match RaceTable::parse_pair(base, bytes, h) {
                    None => {
                        // Stale directory for this table: refresh, redo the
                        // whole batch.
                        self.tables[mn].refresh(&mut self.dm)?;
                        continue 'retry;
                    }
                    Some(entries) => {
                        if let Some((ptr, node)) = self.validate_candidates(&entries, key, l)? {
                            return Ok((ptr, node, l));
                        }
                    }
                }
            }
            // No prefix — not even the root — validated. Same transient
            // window as the filter-cache path: back off and redo the batch
            // before declaring the root entry lost.
            self.stats.entry_misses += 1;
            if budget == 0 {
                return Err(SphinxError::Corrupt {
                    what: "root hash entry missing",
                });
            }
            budget -= 1;
            self.obs_retry();
            self.obs_phase(Phase::Retry);
            self.dm.backoff(&self.retry);
        }
        Err(SphinxError::RetriesExhausted {
            op: "parallel entry lookup",
        })
    }

    // ------------------------------------------------------------------
    // Downward traversal from the entry node.
    // ------------------------------------------------------------------

    pub(crate) fn descend(
        &mut self,
        key: &[u8],
        entry_ptr: RemotePtr,
        entry_node: InnerNode,
        entry_len: usize,
    ) -> Result<DescentResult, SphinxError> {
        let mut node = entry_node;
        let mut ptr = entry_ptr;
        self.obs_phase(Phase::Traversal);
        loop {
            if node.header.status == NodeStatus::Invalid {
                return Ok(DescentResult::Retry);
            }
            let plen = node.header.prefix_len as usize;
            if key.len() == plen {
                // Key terminates exactly at this node.
                return Ok(DescentResult::Done(match node.value_slot {
                    Some(slot) => {
                        let leaf = self.read_leaf(slot.addr, self.config.leaf_read_hint)?;
                        Descent {
                            entry_len,
                            node,
                            node_ptr: ptr,
                            outcome: Outcome::Leaf {
                                slot_ref: SlotRef::Value,
                                slot,
                                leaf,
                            },
                        }
                    }
                    None => Descent {
                        entry_len,
                        node,
                        node_ptr: ptr,
                        outcome: Outcome::NoValueSlot,
                    },
                }));
            }
            let byte = key[plen];
            match node.find_child(byte) {
                None => {
                    return Ok(DescentResult::Done(Descent {
                        entry_len,
                        node,
                        node_ptr: ptr,
                        outcome: Outcome::Empty { byte },
                    }));
                }
                Some((idx, slot)) if slot.is_leaf => {
                    let leaf = self.read_leaf(slot.addr, self.config.leaf_read_hint)?;
                    return Ok(DescentResult::Done(Descent {
                        entry_len,
                        node,
                        node_ptr: ptr,
                        outcome: Outcome::Leaf {
                            slot_ref: SlotRef::Child(idx),
                            slot,
                            leaf,
                        },
                    }));
                }
                Some((idx, slot)) => {
                    let child = read_inner_consistent(&mut self.dm, slot.addr, slot.child_kind)?;
                    if child.header.status == NodeStatus::Invalid
                        || child.header.kind != slot.child_kind
                    {
                        return Ok(DescentResult::Retry);
                    }
                    let clen = child.header.prefix_len as usize;
                    if clen <= plen {
                        return Ok(DescentResult::Retry);
                    }
                    if key.len() >= clen
                        && child.header.prefix_hash42 == prefix_hash42(&key[..clen])
                    {
                        // Child matches the key: keep descending, and teach
                        // the filter this prefix (the "freshness" update of
                        // §IV Search).
                        if self.config.mode == CacheMode::FilterCache
                            && self.filter.refresh(&key[..clen])
                        {
                            self.stats.filter_refreshes += 1;
                        }
                        node = child;
                        ptr = slot.addr;
                        continue;
                    }
                    // Divergence inside the child's compressed path: learn
                    // the actual prefix bytes from any leaf below it.
                    let Some(sample) = self.sample_leaf(&child)? else {
                        return Ok(DescentResult::Retry);
                    };
                    return Ok(DescentResult::Done(Descent {
                        entry_len,
                        node,
                        node_ptr: ptr,
                        outcome: Outcome::Divergent {
                            slot_idx: idx,
                            slot,
                            child,
                            sample,
                        },
                    }));
                }
            }
        }
    }

    /// Fetches any leaf from `node`'s subtree (all of them share the
    /// node's full prefix). `None` when a transient state blocks the walk.
    pub(crate) fn sample_leaf(
        &mut self,
        node: &InnerNode,
    ) -> Result<Option<LeafNode>, SphinxError> {
        let mut current = node.clone();
        for _ in 0..64 {
            let slot = match current
                .value_slot
                .or_else(|| current.slots.iter().flatten().next().copied())
            {
                Some(s) => s,
                None => return Ok(None),
            };
            if slot.is_leaf || current.value_slot == Some(slot) {
                let leaf = self.read_leaf(slot.addr, self.config.leaf_read_hint)?;
                return Ok(Some(leaf));
            }
            let child = read_inner_consistent(&mut self.dm, slot.addr, slot.child_kind)?;
            if child.header.status == NodeStatus::Invalid || child.header.kind != slot.child_kind {
                return Ok(None);
            }
            current = child;
        }
        Ok(None)
    }
}
