//! Write operations: insert (with node splits and type switches), update
//! (in-place and out-of-place), delete. Implements §IV of the paper.

use art_core::hash::{fp12, prefix_hash64};
use art_core::key::common_prefix_len;
use art_core::layout::{HashEntry, InnerNode, LeafNode, NodeStatus, Slot, VALUE_SLOT_OFFSET};
use art_core::NodeKind;
use dm_sim::{DmClient, RemotePtr, Transport};
use node_engine::{
    cas_locked_write, install_word, read_inner_consistent, read_validated_leaf, retire_inner,
    retire_leaf, write_new_leaf, Install, LeafReadStats,
};
use obs::{OpKind, Phase};
use race_hash::RaceError;

use crate::client::{AmbiguousProbe, Descent, Outcome, ProbeKind, SlotRef, SphinxClient};
use crate::config::CacheMode;
use crate::error::SphinxError;

/// The split oracle the Inner Node Hash Table needs: recover an entry's
/// key hash from the entry word by reading the referenced node's 42-bit
/// full-prefix hash (word 1), which equals the low 42 bits of the
/// placement hash.
fn inht_split_oracle(client: &mut DmClient, word: u64) -> Result<u64, RaceError> {
    let entry = HashEntry::decode(word).ok_or(RaceError::Corrupt {
        what: "undecodable hash entry",
    })?;
    let w1 = client
        .read_u64(
            entry
                .addr
                .checked_add(8)
                .map_err(race_hash::RaceError::from)?,
        )
        .map_err(RaceError::from)?;
    Ok(w1 & ((1 << 42) - 1))
}

impl SphinxClient {
    /// Inserts or overwrites `key` with `value` (upsert, matching YCSB
    /// insert semantics).
    ///
    /// # Errors
    ///
    /// [`SphinxError::KeyTooLong`], [`SphinxError::RetriesExhausted`]
    /// under pathological contention, or substrate errors.
    pub fn insert(&mut self, key: &[u8], value: &[u8]) -> Result<(), SphinxError> {
        self.stats.inserts += 1;
        self.obs_begin(OpKind::Insert);
        let r = self.insert_inner(key, value);
        self.op_exit();
        r
    }

    fn insert_inner(&mut self, key: &[u8], value: &[u8]) -> Result<(), SphinxError> {
        for _ in 0..self.retry.op_retries {
            let d = self.locate(key)?;
            // An ambiguous install from a previous iteration usually
            // settles on this very lookup: apply it as evidence for free.
            self.resolve_probes_with(key, &d);
            let done = match d.outcome {
                Outcome::Leaf {
                    slot_ref,
                    ref slot,
                    ref leaf,
                } if leaf.key == key => {
                    if leaf.status == NodeStatus::Invalid {
                        // Deleted leaf still linked: replace it outright.
                        self.swap_leaf(d.node_ptr, slot_ref, slot, key, value)?
                    } else {
                        self.write_leaf_value(d.node_ptr, slot_ref, slot, leaf, key, value)?
                    }
                }
                Outcome::Leaf {
                    slot_ref,
                    ref slot,
                    ref leaf,
                } => self.split_leaf(d.node_ptr, slot_ref, slot, leaf, key, value)?,
                Outcome::NoValueSlot => {
                    let leaf_ptr = write_new_leaf(&mut self.dm, key, value)?;
                    let new_slot = Slot::leaf(0, leaf_ptr);
                    install_word(
                        &mut self.dm,
                        d.node_ptr,
                        VALUE_SLOT_OFFSET,
                        0,
                        new_slot.encode(),
                    )? == Install::Done
                }
                Outcome::Empty { byte } => match d.node.free_slot(byte) {
                    Some(idx) => {
                        let leaf_ptr = write_new_leaf(&mut self.dm, key, value)?;
                        let new_slot = Slot::leaf(byte, leaf_ptr);
                        self.install_fresh_child(&d.node, d.node_ptr, idx, byte, new_slot, key)?
                    }
                    None => self.type_switch_insert(&d.node, d.node_ptr, key, value)?,
                },
                Outcome::Divergent {
                    slot_idx,
                    ref slot,
                    ref child,
                    ref sample,
                } => self.split_path(d.node_ptr, slot_idx, slot, child, sample, key, value)?,
            };
            if done {
                return Ok(());
            }
            self.obs_retry();
            self.obs_phase(Phase::Retry);
            self.dm.backoff(&self.retry);
        }
        Err(SphinxError::RetriesExhausted { op: "insert" })
    }

    /// Updates an existing key. Returns `false` if the key is absent.
    ///
    /// Fits-in-place updates use the checksum scheme of §III-C: one CAS to
    /// lock, one write that simultaneously stores the value, refreshes the
    /// checksum and releases the lock.
    ///
    /// # Errors
    ///
    /// Same classes as [`SphinxClient::insert`].
    pub fn update(&mut self, key: &[u8], value: &[u8]) -> Result<bool, SphinxError> {
        self.stats.updates += 1;
        self.obs_begin(OpKind::Update);
        let r = self.update_inner(key, value);
        self.op_exit();
        r
    }

    fn update_inner(&mut self, key: &[u8], value: &[u8]) -> Result<bool, SphinxError> {
        for _ in 0..self.retry.op_retries {
            let d = self.locate(key)?;
            match d.outcome {
                Outcome::Leaf {
                    slot_ref,
                    ref slot,
                    ref leaf,
                } if leaf.key == key => {
                    if leaf.status == NodeStatus::Invalid {
                        return Ok(false);
                    }
                    if self.write_leaf_value(d.node_ptr, slot_ref, slot, leaf, key, value)? {
                        return Ok(true);
                    }
                }
                _ => return Ok(false),
            }
            self.obs_retry();
            self.obs_phase(Phase::Retry);
            self.dm.backoff(&self.retry);
        }
        Err(SphinxError::RetriesExhausted { op: "update" })
    }

    /// Deletes a key. Returns whether this client performed the deletion.
    ///
    /// # Errors
    ///
    /// Same classes as [`SphinxClient::insert`].
    pub fn remove(&mut self, key: &[u8]) -> Result<bool, SphinxError> {
        self.stats.deletes += 1;
        self.obs_begin(OpKind::Delete);
        let r = self.remove_inner(key);
        self.op_exit();
        r
    }

    fn remove_inner(&mut self, key: &[u8]) -> Result<bool, SphinxError> {
        for _ in 0..self.retry.op_retries {
            let d = self.locate(key)?;
            match d.outcome {
                Outcome::Leaf {
                    slot_ref,
                    ref slot,
                    ref leaf,
                } if leaf.key == key => {
                    if leaf.status == NodeStatus::Invalid {
                        // Another client deleted it (and owns the slot
                        // cleanup).
                        return Ok(false);
                    }
                    // 1. Invalidate the leaf (fails under a concurrent
                    //    update; retry with fresh state).
                    self.obs_phase(Phase::LeafWrite);
                    let (cur, inv) = leaf.status_cas_words(leaf.status, NodeStatus::Invalid);
                    if self.dm.cas(slot.addr, cur, inv)? != cur {
                        self.obs_retry();
                        self.dm.advance_clock(200);
                        std::thread::yield_now();
                        continue;
                    }
                    // 2. Unlink from the parent. A racing type switch can
                    //    make this fail; re-locate until the slot is gone.
                    let offset = match slot_ref {
                        SlotRef::Child(i) => InnerNode::slot_offset(i),
                        SlotRef::Value => VALUE_SLOT_OFFSET,
                    };
                    if install_word(&mut self.dm, d.node_ptr, offset, slot.encode(), 0)?
                        == Install::Done
                    {
                        // 3. This client won the unlink: the tombstoned
                        //    leaf enters the limbo list and is freed once
                        //    its grace period elapses.
                        let SphinxClient { dm, reclaim, .. } = self;
                        retire_leaf(dm, reclaim, slot.addr, leaf);
                    } else {
                        self.unlink_invalid_leaf(key)?;
                    }
                    return Ok(true);
                }
                _ => return Ok(false),
            }
        }
        Err(SphinxError::RetriesExhausted { op: "remove" })
    }

    /// After this client invalidated a leaf but lost the unlink race (e.g.
    /// to a concurrent type switch that copied the slot), chase the moved
    /// slot until it is cleared.
    fn unlink_invalid_leaf(&mut self, key: &[u8]) -> Result<(), SphinxError> {
        for _ in 0..self.retry.op_retries {
            let d = self.locate(key)?;
            match d.outcome {
                Outcome::Leaf {
                    slot_ref,
                    ref slot,
                    ref leaf,
                } if leaf.key == key && leaf.status == NodeStatus::Invalid => {
                    let offset = match slot_ref {
                        SlotRef::Child(i) => InnerNode::slot_offset(i),
                        SlotRef::Value => VALUE_SLOT_OFFSET,
                    };
                    if install_word(&mut self.dm, d.node_ptr, offset, slot.encode(), 0)?
                        == Install::Done
                    {
                        // Won the (moved) unlink: retire the tombstoned
                        // leaf exactly as on the fast path.
                        let SphinxClient { dm, reclaim, .. } = self;
                        retire_leaf(dm, reclaim, slot.addr, leaf);
                        return Ok(());
                    }
                    self.dm.backoff(&self.retry);
                }
                // Slot already gone: whoever cleared (or replaced) it won
                // the unlink and owns the region's retirement.
                _ => return Ok(()),
            }
        }
        Err(SphinxError::RetriesExhausted { op: "unlink" })
    }

    // ------------------------------------------------------------------
    // Building blocks.
    // ------------------------------------------------------------------

    /// Installs a slot for a dispatch byte that had **no** child — the one
    /// case where two racing clients can occupy *different* free slots for
    /// the *same* byte (each CAS succeeds against 0). The batch re-reads
    /// the whole node after the CAS; if *any other* occupied slot carries
    /// the same byte, this client undoes its install and retries. Because
    /// at least one of two racers always observes the other (their
    /// CAS→read windows overlap), at most one install survives.
    fn install_fresh_child(
        &mut self,
        node: &InnerNode,
        node_ptr: RemotePtr,
        idx: usize,
        byte: u8,
        new_slot: Slot,
        key: &[u8],
    ) -> Result<bool, SphinxError> {
        let offset = InnerNode::slot_offset(idx);
        let node_len = InnerNode::byte_size(node.header.kind);
        let (prev, bytes) = self.dm.cas_and_read(
            node_ptr.checked_add(offset)?,
            0,
            new_slot.encode(),
            node_ptr,
            node_len,
        )?;
        if prev != 0 {
            // Clean CAS loss: the fresh leaf was never published anywhere,
            // so it can bypass the grace period.
            let _ = self.dm.free(new_slot.addr);
            return Ok(false);
        }
        let mut now = match InnerNode::decode(&bytes) {
            Ok(n) => n,
            Err(_) => return self.resolve_settled_install(node, node_ptr, idx, byte, key),
        };
        if now.header.status != NodeStatus::Idle || now.header.kind != node.header.kind {
            // The node is mid type-switch: our word may or may not be in
            // the replacement's copy, and leaving a duplicate byte behind
            // would shadow a sibling key. Wait for the switch to settle
            // and resolve deterministically.
            return self.resolve_settled_install(node, node_ptr, idx, byte, key);
        }
        // Duplicate check: any *other* occupant of this byte forces an
        // undo (symmetric rule — a one-sided tie-break can double-keep
        // when one racer's read predates the other's CAS).
        let duplicated = now
            .slots
            .iter()
            .enumerate()
            .any(|(i, s)| i != idx && s.is_some_and(|s| s.key_byte == byte));
        let _ = &mut now;
        if duplicated {
            let prev = self
                .dm
                .cas(node_ptr.checked_add(offset)?, new_slot.encode(), 0)?;
            if prev == new_slot.encode() {
                // We unlinked our own briefly-visible leaf; a racing reader
                // may hold its address, so it takes the grace period. (The
                // true leaf size is not in scope here — 64 bytes is the
                // minimum unit and only skews telemetry, not the free.)
                let SphinxClient { dm, reclaim, .. } = self;
                reclaim.retire(dm, new_slot.addr, 64);
            }
            return Ok(false);
        }
        Ok(true)
    }

    /// After a fresh-child CAS landed on a node observed mid type-switch,
    /// waits for the node to settle and resolves the install outcome
    /// deterministically:
    ///
    /// * node back to `Idle` (the switch bailed): rerun the duplicate
    ///   check; undo is safe again because no copy is in flight;
    /// * node `Invalid` (the switch completed): the word survives iff the
    ///   switcher's copy caught it — observable by looking the key up
    ///   through the fresh structure.
    fn resolve_settled_install(
        &mut self,
        node: &InnerNode,
        node_ptr: RemotePtr,
        idx: usize,
        byte: u8,
        key: &[u8],
    ) -> Result<bool, SphinxError> {
        let offset = InnerNode::slot_offset(idx);
        for _ in 0..self.retry.op_retries {
            let control = self.dm.read_u64(node_ptr)?;
            match (control & 0xFF) as u8 {
                x if x == NodeStatus::Idle as u8 => {
                    let bytes = self
                        .dm
                        .read(node_ptr, InnerNode::byte_size(node.header.kind))?;
                    let Ok(now) = InnerNode::decode(&bytes) else {
                        continue;
                    };
                    if now.header.kind != node.header.kind {
                        continue;
                    }
                    let mine = now.slots.get(idx).copied().flatten();
                    if mine.map(|s| s.key_byte) != Some(byte) {
                        return Ok(false); // someone cleared it; retry
                    }
                    let duplicated = now
                        .slots
                        .iter()
                        .enumerate()
                        .any(|(i, s)| i != idx && s.is_some_and(|s| s.key_byte == byte));
                    if duplicated {
                        let slot = mine.expect("checked above");
                        let prev = self
                            .dm
                            .cas(node_ptr.checked_add(offset)?, slot.encode(), 0)?;
                        if prev == slot.encode() {
                            // Same undo as in `install_fresh_child`: we won
                            // the unlink of our own word, so the leaf takes
                            // the grace period.
                            let SphinxClient { dm, reclaim, .. } = self;
                            reclaim.retire(dm, slot.addr, 64);
                        }
                        return Ok(false);
                    }
                    return Ok(true);
                }
                x if x == NodeStatus::Invalid as u8 => {
                    // Switch completed: success iff the key is reachable in
                    // the replacement structure.
                    return self.key_is_live(key);
                }
                _ => {
                    // Still locked: let the switcher run.
                    self.obs.incr("lock.spin");
                    self.dm.backoff(&self.retry);
                }
            }
        }
        Err(SphinxError::RetriesExhausted {
            op: "install resolve",
        })
    }

    /// Whether `key` currently resolves to a live leaf holding it.
    fn key_is_live(&mut self, key: &[u8]) -> Result<bool, SphinxError> {
        let d = self.locate(key)?;
        Ok(matches!(
            d.outcome,
            Outcome::Leaf { ref leaf, .. }
                if leaf.key == key && leaf.status != NodeStatus::Invalid
        ))
    }

    /// Writes a new value into an existing leaf: in place when it fits
    /// (§III-C), else out of place via slot replacement.
    fn write_leaf_value(
        &mut self,
        node_ptr: RemotePtr,
        slot_ref: SlotRef,
        slot: &Slot,
        leaf: &LeafNode,
        key: &[u8],
        value: &[u8],
    ) -> Result<bool, SphinxError> {
        if leaf.fits_in_place(value.len()) {
            // One CAS (lock) + one write (value + checksum + unlock) in a
            // single engine call: attributed wholesale to LeafWrite.
            self.obs_phase(Phase::LeafWrite);
            let (idle, locked) = leaf.status_cas_words(NodeStatus::Idle, NodeStatus::Locked);
            let mut new_leaf = LeafNode::new(key.to_vec(), value.to_vec());
            new_leaf.version = leaf.version.wrapping_add(1);
            new_leaf.set_len_units(leaf.len_units());
            // The publishing write stores the value, refreshes the checksum
            // and — because the written status byte is Idle — releases the
            // lock. A lost lock CAS means the leaf changed; retry.
            Ok(cas_locked_write(
                &mut self.dm,
                slot.addr,
                idle,
                locked,
                vec![(slot.addr, new_leaf.encode())],
            )?)
        } else {
            self.swap_leaf(node_ptr, slot_ref, slot, key, value)
        }
    }

    /// Out-of-place leaf replacement: write a fresh leaf, swing the parent
    /// slot, invalidate the old leaf.
    fn swap_leaf(
        &mut self,
        node_ptr: RemotePtr,
        slot_ref: SlotRef,
        slot: &Slot,
        key: &[u8],
        value: &[u8],
    ) -> Result<bool, SphinxError> {
        self.obs_phase(Phase::LeafWrite);
        let new_ptr = write_new_leaf(&mut self.dm, key, value)?;
        let new_slot = Slot::leaf(slot.key_byte, new_ptr);
        let offset = match slot_ref {
            SlotRef::Child(i) => InnerNode::slot_offset(i),
            SlotRef::Value => VALUE_SLOT_OFFSET,
        };
        match install_word(
            &mut self.dm,
            node_ptr,
            offset,
            slot.encode(),
            new_slot.encode(),
        )? {
            Install::Done => {
                // Tombstone the unlinked leaf so laggard readers holding
                // its address see an invalid node, then hand the region to
                // the epoch reclaimer (docs/RECLAMATION.md): it is freed
                // once every other client has pinned a later epoch.
                self.tombstone_and_retire(slot.addr);
                Ok(true)
            }
            Install::Raced => {
                let _ = self.dm.free(new_ptr);
                Ok(false)
            }
            Install::Ambiguous => {
                // The new leaf may live on in a type-switched copy of the
                // node: defer the ownership decision to a re-probe at an
                // operation boundary.
                self.ambiguous.push(AmbiguousProbe {
                    key: key.to_vec(),
                    attempts: 0,
                    kind: ProbeKind::SwapLeaf {
                        old: slot.addr,
                        fresh: new_ptr,
                        fresh_bytes: LeafNode::encoded_size(key.len(), value.len()) as u64,
                    },
                });
                Ok(false)
            }
        }
    }

    /// Best-effort tombstone of an unlinked leaf (so laggard readers see
    /// an invalid node) followed by its retirement into the limbo list.
    /// Only the client that won the unlinking CAS may call this.
    fn tombstone_and_retire(&mut self, ptr: RemotePtr) {
        let mut io = LeafReadStats::default();
        let bytes = match read_validated_leaf(&mut self.dm, ptr, 64, &self.retry, &mut io) {
            Ok(old) => {
                if old.status != NodeStatus::Invalid {
                    let (cur, inv) = old.status_cas_words(old.status, NodeStatus::Invalid);
                    let _ = self.dm.cas(ptr, cur, inv);
                }
                old.len_units().max(1) as u64 * 64
            }
            Err(_) => 64,
        };
        let SphinxClient { dm, reclaim, .. } = self;
        reclaim.retire(dm, ptr, bytes);
    }

    /// Case: dispatch slot holds a leaf with a *different* key — create a
    /// Node4 over their common prefix (an ART node split).
    fn split_leaf(
        &mut self,
        node_ptr: RemotePtr,
        slot_ref: SlotRef,
        slot: &Slot,
        leaf: &LeafNode,
        key: &[u8],
        value: &[u8],
    ) -> Result<bool, SphinxError> {
        let SlotRef::Child(slot_idx) = slot_ref else {
            // A value-slot leaf's key equals the node prefix, which equals
            // the search key when the descent ends there — a mismatch here
            // means the tree changed under us; retry.
            return Ok(false);
        };
        let cpl = common_prefix_len(key, &leaf.key);
        let prefix = &key[..cpl];
        self.obs_phase(Phase::LeafWrite);
        // The new leaf's address is needed inside the new inner node, so
        // allocate it first; both writes then share one doorbell batch.
        let leaf_ptr = self.dm.alloc_placed(
            prefix_hash64(key),
            art_core::layout::LeafNode::encoded_size(key.len(), value.len()),
        )?;
        let mut n = InnerNode::new(NodeKind::Node4, prefix);
        // Re-hang the existing leaf (reusing its storage).
        if leaf.key.len() == cpl {
            n.value_slot = Some(Slot::leaf(0, slot.addr));
        } else {
            n.set_child(Slot::leaf(leaf.key[cpl], slot.addr));
        }
        if key.len() == cpl {
            n.value_slot = Some(Slot::leaf(0, leaf_ptr));
        } else {
            n.set_child(Slot::leaf(key[cpl], leaf_ptr));
        }
        let node_bytes = n.encode();
        let n_ptr = self
            .dm
            .alloc_placed(prefix_hash64(prefix), node_bytes.len())?;
        self.dm.write_many(vec![
            (
                leaf_ptr,
                art_core::layout::LeafNode::new(key.to_vec(), value.to_vec()).encode(),
            ),
            (n_ptr, node_bytes),
        ])?;
        let new_slot = Slot::inner(slot.key_byte, NodeKind::Node4, n_ptr);
        match install_word(
            &mut self.dm,
            node_ptr,
            InnerNode::slot_offset(slot_idx),
            slot.encode(),
            new_slot.encode(),
        )? {
            Install::Done => {
                self.publish_new_inner(prefix, NodeKind::Node4, n_ptr)?;
                Ok(true)
            }
            Install::Raced => {
                let _ = self.dm.free(n_ptr);
                let _ = self.dm.free(leaf_ptr);
                Ok(false)
            }
            Install::Ambiguous => {
                // The new node (and the leaf inside it) may be live in a
                // type-switched copy: defer ownership to a re-probe.
                self.ambiguous.push(AmbiguousProbe {
                    key: key.to_vec(),
                    attempts: 0,
                    kind: ProbeKind::NewInner {
                        node: n_ptr,
                        node_bytes: InnerNode::byte_size(NodeKind::Node4) as u64,
                        leaf: leaf_ptr,
                        leaf_bytes: LeafNode::encoded_size(key.len(), value.len()) as u64,
                        old: slot.addr,
                    },
                });
                Ok(false)
            }
        }
    }

    /// Case: dispatch slot holds an inner node whose compressed path
    /// diverges from the key — split the path with a Node4 over the common
    /// prefix (learned from `sample`, a leaf of the child's subtree).
    #[allow(clippy::too_many_arguments)]
    fn split_path(
        &mut self,
        node_ptr: RemotePtr,
        slot_idx: usize,
        slot: &Slot,
        child: &InnerNode,
        sample: &LeafNode,
        key: &[u8],
        value: &[u8],
    ) -> Result<bool, SphinxError> {
        let cpl = common_prefix_len(key, &sample.key);
        let clen = child.header.prefix_len as usize;
        if cpl >= clen || cpl >= sample.key.len() {
            // The structure changed since we sampled; retry.
            return Ok(false);
        }
        let prefix = &key[..cpl];
        self.obs_phase(Phase::LeafWrite);
        let leaf_ptr = self.dm.alloc_placed(
            prefix_hash64(key),
            art_core::layout::LeafNode::encoded_size(key.len(), value.len()),
        )?;
        let mut n = InnerNode::new(NodeKind::Node4, prefix);
        n.set_child(Slot::inner(sample.key[cpl], child.header.kind, slot.addr));
        if key.len() == cpl {
            n.value_slot = Some(Slot::leaf(0, leaf_ptr));
        } else {
            n.set_child(Slot::leaf(key[cpl], leaf_ptr));
        }
        let node_bytes = n.encode();
        let n_ptr = self
            .dm
            .alloc_placed(prefix_hash64(prefix), node_bytes.len())?;
        self.dm.write_many(vec![
            (
                leaf_ptr,
                art_core::layout::LeafNode::new(key.to_vec(), value.to_vec()).encode(),
            ),
            (n_ptr, node_bytes),
        ])?;
        let new_slot = Slot::inner(slot.key_byte, NodeKind::Node4, n_ptr);
        match install_word(
            &mut self.dm,
            node_ptr,
            InnerNode::slot_offset(slot_idx),
            slot.encode(),
            new_slot.encode(),
        )? {
            Install::Done => {
                self.publish_new_inner(prefix, NodeKind::Node4, n_ptr)?;
                Ok(true)
            }
            Install::Raced => {
                let _ = self.dm.free(n_ptr);
                let _ = self.dm.free(leaf_ptr);
                Ok(false)
            }
            Install::Ambiguous => {
                // Same as in `split_leaf`: adoption is decided by a
                // deferred re-probe, not guessed here.
                self.ambiguous.push(AmbiguousProbe {
                    key: key.to_vec(),
                    attempts: 0,
                    kind: ProbeKind::NewInner {
                        node: n_ptr,
                        node_bytes: InnerNode::byte_size(NodeKind::Node4) as u64,
                        leaf: leaf_ptr,
                        leaf_bytes: LeafNode::encoded_size(key.len(), value.len()) as u64,
                        old: slot.addr,
                    },
                });
                Ok(false)
            }
        }
    }

    /// The node-type switch of §III-C: lock, copy into a grown node (with
    /// the new leaf folded in), swing the parent pointer, update the hash
    /// table, invalidate the original.
    fn type_switch_insert(
        &mut self,
        node: &InnerNode,
        node_ptr: RemotePtr,
        key: &[u8],
        value: &[u8],
    ) -> Result<bool, SphinxError> {
        let plen = node.header.prefix_len as usize;
        let prefix = &key[..plen];
        let byte = key[plen];
        if node.grown_kind().is_none() {
            // A full Node256 has a child for every byte; `Empty` cannot
            // have been observed unless the snapshot was stale.
            return Ok(false);
        }
        // 1+2. Node-grained lock, with the authoritative re-read
        // piggybacked in the same doorbell batch (the read executes after
        // the CAS, so on success it observes the locked node).
        self.obs_phase(Phase::LockAcquire);
        let idle = node.header.control_with_status(NodeStatus::Idle);
        let locked = node.header.control_with_status(NodeStatus::Locked);
        let (prev, bytes) = self.dm.cas_and_read(
            node_ptr,
            idle,
            locked,
            node_ptr,
            InnerNode::byte_size(node.header.kind),
        )?;
        if prev != idle {
            self.obs.incr("lock.contended");
            return Ok(false);
        }
        let fresh = InnerNode::decode(&bytes)?;
        let unlock = fresh.header.control_with_status(NodeStatus::Idle);

        if fresh.find_child(byte).is_some() {
            // Someone installed our dispatch byte concurrently before we
            // locked; bail and re-descend.
            self.dm.write_u64(node_ptr, unlock)?;
            return Ok(false);
        }
        if let Some(idx) = fresh.free_slot(byte) {
            // A concurrent delete freed a slot: plain install under the
            // lock, no switch needed.
            let leaf_ptr = write_new_leaf(&mut self.dm, key, value)?;
            self.dm.write_many(vec![
                (
                    node_ptr.checked_add(InnerNode::slot_offset(idx))?,
                    Slot::leaf(byte, leaf_ptr).encode().to_le_bytes().to_vec(),
                ),
                (node_ptr, unlock.to_le_bytes().to_vec()),
            ])?;
            return Ok(true);
        }

        // 3. Build the grown replacement with the new leaf folded in; both
        // fresh nodes are written in one doorbell batch.
        self.obs_phase(Phase::LeafWrite);
        let mut grown = fresh.grow();
        let (leaf_ptr, grown_ptr) = {
            let leaf_ptr = self.dm.alloc_placed(
                prefix_hash64(key),
                art_core::layout::LeafNode::encoded_size(key.len(), value.len()),
            )?;
            grown.set_child(Slot::leaf(byte, leaf_ptr));
            let grown_bytes = grown.encode();
            let grown_ptr = self
                .dm
                .alloc_placed(prefix_hash64(prefix), grown_bytes.len())?;
            self.dm.write_many(vec![
                (
                    leaf_ptr,
                    art_core::layout::LeafNode::new(key.to_vec(), value.to_vec()).encode(),
                ),
                (grown_ptr, grown_bytes),
            ])?;
            (leaf_ptr, grown_ptr)
        };

        // 4. Swing the parent's child slot (the root has no parent).
        let is_root = prefix.is_empty();
        if !is_root {
            match self.swing_parent_slot(key, plen, node_ptr, grown.header.kind, grown_ptr)? {
                Install::Done => {}
                Install::Raced => {
                    // Provably never linked: safe to reclaim and retry.
                    self.dm.write_u64(node_ptr, unlock)?;
                    let _ = self.dm.free(grown_ptr);
                    let _ = self.dm.free(leaf_ptr);
                    return Ok(false);
                }
                Install::Ambiguous => {
                    // The grown node may be linked through a copy we cannot
                    // see yet: release the lock and retry — the fresh
                    // locate converges on whichever structure won, and a
                    // deferred re-probe settles who owns the regions.
                    self.dm.write_u64(node_ptr, unlock)?;
                    self.ambiguous.push(AmbiguousProbe {
                        key: key.to_vec(),
                        attempts: 0,
                        kind: ProbeKind::TypeSwitch {
                            grown: grown_ptr,
                            leaf: leaf_ptr,
                            original: node_ptr,
                            orig_kind: fresh.header.kind,
                            plen,
                        },
                    });
                    return Ok(false);
                }
            }
        }

        // 5. Update the Inner Node Hash Table (single 8-byte CAS, §IV).
        self.obs_phase(Phase::Maintenance);
        let h = prefix_hash64(prefix);
        let mn = self.dm.place(h) as usize;
        let fp = fp12(prefix);
        let old_entry = HashEntry {
            fp,
            kind: fresh.header.kind,
            addr: node_ptr,
        };
        let new_entry = HashEntry {
            fp,
            kind: grown.header.kind,
            addr: grown_ptr,
        };
        let SphinxClient { tables, dm, .. } = self;
        let replaced = tables[mn].replace(dm, h, old_entry.encode(), new_entry.encode())?;

        // 6. Retire the original so readers holding stale hash entries or
        //    pointers retry (§III-C); its region enters the limbo list and
        //    is reused only after the epoch grace period.
        {
            let SphinxClient { dm, reclaim, .. } = self;
            retire_inner(dm, reclaim, node_ptr, &fresh)?;
        }
        if !replaced {
            // Lost publish race: another writer grew this same logical node
            // between our parent swing (step 4) and this CAS, so the entry
            // no longer names `fresh` and the table may be left naming a
            // retired node in this prefix's chain. Heal it from the tree.
            self.reconcile_inht_entry(key, plen)?;
        }
        Ok(true)
    }

    /// Finds the tree parent of the node with full prefix `key[..plen]`
    /// and CASes its child slot from `old_ptr` to the grown node,
    /// verifying adoption through the live tree when the CAS outcome is
    /// ambiguous (the parent itself may be mid-type-switch).
    fn swing_parent_slot(
        &mut self,
        key: &[u8],
        plen: usize,
        old_ptr: RemotePtr,
        new_kind: NodeKind,
        new_ptr: RemotePtr,
    ) -> Result<Install, SphinxError> {
        let mut ambiguous_seen = false;
        for _ in 0..64 {
            match self.find_parent_slot(key, plen, old_ptr)? {
                Some((parent_ptr, idx, slot)) => {
                    let new_slot = Slot::inner(slot.key_byte, new_kind, new_ptr);
                    match install_word(
                        &mut self.dm,
                        parent_ptr,
                        InnerNode::slot_offset(idx),
                        slot.encode(),
                        new_slot.encode(),
                    )? {
                        Install::Done => return Ok(Install::Done),
                        Install::Ambiguous => ambiguous_seen = true,
                        Install::Raced => {}
                    }
                }
                None => {
                    // The old node is no longer linked under this key: if
                    // the live tree now points at OUR replacement, an
                    // ambiguous CAS was in fact adopted.
                    if self.find_parent_slot(key, plen, new_ptr)?.is_some() {
                        return Ok(Install::Done);
                    }
                    // Neither old nor new is linked: the tree moved on
                    // (e.g. a parent copy adopted a different structure)
                    // while the hash table may still name the dead node.
                    // Heal it from the tree — the source of truth — so the
                    // retry does not loop through the stale entry forever.
                    self.repair_inht_entry(key, plen, old_ptr)?;
                    return Ok(if ambiguous_seen {
                        Install::Ambiguous
                    } else {
                        Install::Raced
                    });
                }
            }
            self.dm.backoff(&self.retry);
        }
        Ok(if ambiguous_seen {
            Install::Ambiguous
        } else {
            Install::Raced
        })
    }

    /// Re-points the Inner Node Hash Table entry for `key[..plen]` at the
    /// node the live tree actually holds at that position (found by a pure
    /// tree walk, bypassing the possibly-stale hash table).
    fn repair_inht_entry(
        &mut self,
        key: &[u8],
        plen: usize,
        stale_ptr: RemotePtr,
    ) -> Result<(), SphinxError> {
        // Pure tree walk from the root to the node with prefix_len == plen.
        let (_, mut node, _) = self.entry_node(key, 0)?;
        let mut node_ptr = None;
        for _ in 0..64 {
            let nplen = node.header.prefix_len as usize;
            if nplen == plen {
                break;
            }
            if nplen > plen || key.len() <= nplen {
                return Ok(()); // position no longer exists; nothing to heal
            }
            let Some((_, slot)) = node.find_child(key[nplen]) else {
                return Ok(());
            };
            if slot.is_leaf {
                return Ok(());
            }
            node = read_inner_consistent(&mut self.dm, slot.addr, slot.child_kind)?;
            node_ptr = Some(slot.addr);
        }
        let Some(live_ptr) = node_ptr else {
            return Ok(());
        };
        if live_ptr == stale_ptr
            || node.header.prefix_len as usize != plen
            || node.header.status == NodeStatus::Invalid
        {
            return Ok(());
        }
        let prefix = &key[..plen];
        if node.header.prefix_hash42 != art_core::hash::prefix_hash42(prefix) {
            return Ok(()); // different subtree; not ours to touch
        }
        let h = prefix_hash64(prefix);
        let mn = self.dm.place(h) as usize;
        let fp = fp12(prefix);
        // Replace whatever entry currently names the stale node.
        let SphinxClient { tables, dm, .. } = self;
        let found = tables[mn].search(dm, h)?;
        for e in found {
            if let Some(he) = HashEntry::decode(e.word) {
                if he.fp == fp && he.addr == stale_ptr {
                    let fresh = HashEntry {
                        fp,
                        kind: node.header.kind,
                        addr: live_ptr,
                    };
                    let _ = tables[mn].replace(dm, h, e.word, fresh.encode())?;
                    return Ok(());
                }
            }
        }
        Ok(())
    }

    /// Walks from an ancestor entry node to the node whose child slot
    /// holds `child_ptr`.
    fn find_parent_slot(
        &mut self,
        key: &[u8],
        child_plen: usize,
        child_ptr: RemotePtr,
    ) -> Result<Option<(RemotePtr, usize, Slot)>, SphinxError> {
        'outer: for _ in 0..64 {
            let (mut ptr, mut node, _len) = self.entry_node(key, child_plen - 1)?;
            loop {
                if node.header.status == NodeStatus::Invalid {
                    self.dm.backoff(&self.retry);
                    continue 'outer;
                }
                let plen = node.header.prefix_len as usize;
                if plen >= child_plen {
                    continue 'outer;
                }
                let byte = key[plen];
                let Some((idx, slot)) = node.find_child(byte) else {
                    return Ok(None);
                };
                if slot.addr == child_ptr {
                    return Ok(Some((ptr, idx, slot)));
                }
                if slot.is_leaf {
                    return Ok(None);
                }
                let child = read_inner_consistent(&mut self.dm, slot.addr, slot.child_kind)?;
                if child.header.kind != slot.child_kind {
                    continue 'outer;
                }
                ptr = slot.addr;
                node = child;
            }
        }
        Ok(None)
    }

    /// Registers a freshly published inner node in the INHT and the local
    /// Succinct Filter Cache (§IV Insert: "after a node split, where a new
    /// inner node with a new prefix is added").
    fn publish_new_inner(
        &mut self,
        prefix: &[u8],
        kind: NodeKind,
        ptr: RemotePtr,
    ) -> Result<(), SphinxError> {
        self.obs_phase(Phase::Maintenance);
        let h = prefix_hash64(prefix);
        let mn = self.dm.place(h) as usize;
        let entry = HashEntry {
            fp: fp12(prefix),
            kind,
            addr: ptr,
        };
        let SphinxClient { tables, dm, .. } = self;
        tables[mn].insert(dm, h, entry.encode(), inht_split_oracle)?;
        if self.config.mode == CacheMode::FilterCache {
            self.filter.insert(prefix);
        }
        // The node was linked before this publish, so a concurrent type
        // switch may already have grown and retired it — in which case the
        // grower's own publish CAS found no entry to replace and the entry
        // just inserted names a dead node. One status re-read closes the
        // window: if the node was retired, heal the entry from the tree.
        let control = self.dm.read_u64(ptr)?;
        if control & 0xFF == NodeStatus::Invalid as u64 {
            self.reconcile_inht_entry(prefix, prefix.len())?;
        }
        Ok(())
    }

    /// Re-derives the live node at `key[..plen]` from the tree — the
    /// source of truth — and swings the INHT entry for that prefix onto
    /// it. Called after a lost publish race (a `replace` CAS that found
    /// its expected entry gone, or an `insert` that landed after the node
    /// it names was retired); without it the table can permanently name a
    /// retired node while the live replacement has no entry at all.
    ///
    /// Bounded: after 16 lost CAS rounds the entry is left for the read
    /// path to heal lazily like any other stale entry.
    fn reconcile_inht_entry(&mut self, key: &[u8], plen: usize) -> Result<(), SphinxError> {
        let prefix = &key[..plen];
        let prefix_h42 = art_core::hash::prefix_hash42(prefix);
        for _ in 0..16 {
            // Walk from the root to the live node with this prefix.
            let (_, mut node, _) = self.entry_node(key, 0)?;
            let mut node_ptr = None;
            for _ in 0..64 {
                let nplen = node.header.prefix_len as usize;
                if nplen == plen {
                    break;
                }
                if nplen > plen || key.len() <= nplen {
                    return Ok(()); // position no longer exists
                }
                let Some((_, slot)) = node.find_child(key[nplen]) else {
                    return Ok(());
                };
                if slot.is_leaf {
                    return Ok(());
                }
                node = read_inner_consistent(&mut self.dm, slot.addr, slot.child_kind)?;
                node_ptr = Some(slot.addr);
            }
            let Some(live_ptr) = node_ptr else {
                return Ok(());
            };
            if node.header.prefix_len as usize != plen
                || node.header.status == NodeStatus::Invalid
                || node.header.prefix_hash42 != prefix_h42
            {
                // The structure is mid-churn; whoever retires this node
                // publishes (and reconciles) its replacement.
                return Ok(());
            }
            let h = prefix_hash64(prefix);
            let mn = self.dm.place(h) as usize;
            let fp = fp12(prefix);
            let desired = HashEntry {
                fp,
                kind: node.header.kind,
                addr: live_ptr,
            };
            let SphinxClient { tables, dm, .. } = self;
            let found = tables[mn].search(dm, h)?;
            if found.iter().any(|e| {
                HashEntry::decode(e.word).is_some_and(|he| he.fp == fp && he.addr == live_ptr)
            }) {
                return Ok(()); // already consistent
            }
            // Swing the entry naming a (possibly retired) member of this
            // prefix's node chain. The 42-bit prefix hash — preserved by
            // invalidation, which rewrites only the control word — keeps a
            // colliding prefix's entry out of reach.
            let mut lost_cas = false;
            for e in found {
                let Some(he) = HashEntry::decode(e.word) else {
                    continue;
                };
                if he.fp != fp || he.addr == live_ptr {
                    continue;
                }
                let Ok(stale) = read_inner_consistent(&mut self.dm, he.addr, he.kind) else {
                    continue;
                };
                if stale.header.prefix_hash42 != prefix_h42 {
                    continue;
                }
                let SphinxClient { tables, dm, .. } = self;
                if tables[mn].replace(dm, h, e.word, desired.encode())? {
                    return Ok(());
                }
                lost_cas = true;
                break;
            }
            if !lost_cas {
                // No entry for this prefix at all: the publisher's insert
                // is still in flight. Its post-insert status check (above)
                // finds the retired node and reconciles — nothing to do
                // here, and inserting now would create a duplicate.
                return Ok(());
            }
            self.dm.backoff(&self.retry);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Deferred ownership re-probes for ambiguous installs.
    //
    // An `Install::Ambiguous` word may or may not survive in the
    // type-switched copy of its node, so the regions it references can be
    // neither used nor freed at the install site. Each ambiguous install
    // records an `AmbiguousProbe`; a later lookup of the same key decides
    // ownership from what the tree actually serves:
    //
    // * our region answers the key        → the tree adopted the word; the
    //                                        region it *replaced* is ours
    //                                        to retire;
    // * the replaced word is still linked → the CAS provably never landed
    //                                        (an unlinked word can never
    //                                        be re-linked), so our region
    //                                        was never visible;
    // * anything else                     → a third party has since won a
    //                                        CAS over whichever word
    //                                        survived, and ownership moved
    //                                        with it: abandon the entry
    //                                        (counted, bounded leak)
    //                                        rather than risk a double
    //                                        free.
    // ------------------------------------------------------------------

    /// Resolves up to two pending probes with a fresh lookup each. Runs at
    /// operation exits, attributed to the maintenance phase; never fails
    /// the caller's operation.
    pub(crate) fn probe_ambiguous(&mut self) {
        const MAX_PROBES_PER_OP: usize = 2;
        for _ in 0..MAX_PROBES_PER_OP {
            let Some(probe) = self.ambiguous.pop() else {
                return;
            };
            let verdict = match self.locate(&probe.key) {
                Ok(d) => Self::probe_evidence(&probe, &d),
                Err(_) => ProbeVerdict::Unknown,
            };
            if !self.settle_probe(probe, verdict) {
                // Re-queued: stop so one stuck entry is not probed twice
                // in the same operation.
                return;
            }
        }
    }

    /// Applies a descent for `key` as evidence to any pending probe for
    /// the same key — the common resolution path, since the insert retry
    /// following an ambiguous install looks the key up anyway.
    pub(crate) fn resolve_probes_with(&mut self, key: &[u8], d: &Descent) {
        if self.ambiguous.is_empty() {
            return;
        }
        let (mine, rest): (Vec<_>, Vec<_>) = std::mem::take(&mut self.ambiguous)
            .into_iter()
            .partition(|p| p.key == key);
        self.ambiguous = rest;
        for probe in mine {
            let verdict = Self::probe_evidence(&probe, d);
            self.settle_probe(probe, verdict);
        }
    }

    /// What a fresh descent for the probe's key says about adoption.
    fn probe_evidence(probe: &AmbiguousProbe, d: &Descent) -> ProbeVerdict {
        match probe.kind {
            ProbeKind::SwapLeaf { old, fresh, .. } => match &d.outcome {
                Outcome::Leaf { slot, leaf, .. } if slot.addr == fresh && leaf.key == probe.key => {
                    ProbeVerdict::Adopted
                }
                Outcome::Leaf { slot, .. } if slot.addr == old => ProbeVerdict::NotAdopted,
                _ => ProbeVerdict::ThirdParty,
            },
            ProbeKind::NewInner {
                node, leaf, old, ..
            } => {
                if d.node_ptr == node {
                    return ProbeVerdict::Adopted;
                }
                match &d.outcome {
                    Outcome::Leaf { slot, leaf: l, .. }
                        if slot.addr == leaf && l.key == probe.key =>
                    {
                        ProbeVerdict::Adopted
                    }
                    Outcome::Leaf { slot, .. } if slot.addr == old => ProbeVerdict::NotAdopted,
                    Outcome::Divergent { slot, .. } if slot.addr == old => ProbeVerdict::NotAdopted,
                    _ => ProbeVerdict::ThirdParty,
                }
            }
            ProbeKind::TypeSwitch { grown, leaf, .. } => {
                if d.node_ptr == grown {
                    return ProbeVerdict::Adopted;
                }
                match &d.outcome {
                    Outcome::Leaf { slot, leaf: l, .. }
                        if slot.addr == leaf && l.key == probe.key =>
                    {
                        ProbeVerdict::Adopted
                    }
                    Outcome::Leaf { leaf: l, .. } if l.key == probe.key => {
                        // Our key is served by some other region entirely.
                        ProbeVerdict::ThirdParty
                    }
                    // A descent that does not reach the grown node is NOT
                    // proof of non-adoption: a stale hash entry can still
                    // route it into the unlinked original. Keep probing.
                    _ => ProbeVerdict::Unknown,
                }
            }
        }
    }

    /// Acts on a probe verdict. Returns `false` when the probe was
    /// re-queued for another attempt, `true` when it was consumed.
    fn settle_probe(&mut self, mut probe: AmbiguousProbe, verdict: ProbeVerdict) -> bool {
        const MAX_ATTEMPTS: u32 = 8;
        let settled = match verdict {
            ProbeVerdict::Adopted => {
                if self.probe_adopted(&probe) {
                    self.obs.incr("reclaim.ambiguous_adopted");
                    true
                } else {
                    false
                }
            }
            ProbeVerdict::NotAdopted => {
                // Our regions were never visible; they still take the
                // grace period (costs nothing, guards the conclusion).
                let SphinxClient { dm, reclaim, .. } = self;
                match probe.kind {
                    ProbeKind::SwapLeaf {
                        fresh, fresh_bytes, ..
                    } => reclaim.retire(dm, fresh, fresh_bytes),
                    ProbeKind::NewInner {
                        node,
                        node_bytes,
                        leaf,
                        leaf_bytes,
                        ..
                    } => {
                        reclaim.retire(dm, node, node_bytes);
                        reclaim.retire(dm, leaf, leaf_bytes);
                    }
                    ProbeKind::TypeSwitch { .. } => unreachable!("never concluded for a switch"),
                }
                self.obs.incr("reclaim.ambiguous_unpublished");
                true
            }
            ProbeVerdict::ThirdParty => {
                self.obs.incr("reclaim.ambiguous_abandoned");
                true
            }
            ProbeVerdict::Unknown => false,
        };
        if settled {
            return true;
        }
        probe.attempts += 1;
        if probe.attempts >= MAX_ATTEMPTS {
            self.obs.incr("reclaim.ambiguous_abandoned");
            true
        } else {
            self.ambiguous.push(probe);
            false
        }
    }

    /// The adopted-verdict action. Returns `false` if it must be retried
    /// later (e.g. the original node of a type switch is locked).
    fn probe_adopted(&mut self, probe: &AmbiguousProbe) -> bool {
        match probe.kind {
            ProbeKind::SwapLeaf { old, .. } => {
                // Our CAS replaced the word pointing at `old`: the old
                // leaf is ours to tombstone and retire, exactly as on the
                // unambiguous path.
                self.tombstone_and_retire(old);
                true
            }
            // Adoption re-hung the old occupant inside the new node:
            // everything is live, nothing to reclaim.
            ProbeKind::NewInner { .. } => true,
            ProbeKind::TypeSwitch {
                original,
                orig_kind,
                plen,
                ..
            } => {
                if !self.retire_switched_original(original, orig_kind) {
                    return false;
                }
                // Heal the hash entry still naming the original (the
                // unambiguous path replaces it in step 5).
                let key = probe.key.clone();
                let _ = self.reconcile_inht_entry(&key, plen);
                true
            }
        }
    }

    /// Invalidates and retires the unlinked original of an
    /// ambiguous-but-adopted type switch. The invalidation must CAS (not
    /// store) the control word: nobody holds the node's lock anymore, and
    /// a racing writer routed in by a stale hash entry may be switching
    /// it again — whoever wins the control word owns the retirement.
    fn retire_switched_original(&mut self, original: RemotePtr, orig_kind: NodeKind) -> bool {
        let Ok(node) = read_inner_consistent(&mut self.dm, original, orig_kind) else {
            return false;
        };
        match node.header.status {
            // Someone else already invalidated (and thus retired) it.
            NodeStatus::Invalid => true,
            NodeStatus::Idle => {
                let idle = node.header.control_with_status(NodeStatus::Idle);
                let inv = node.header.control_with_status(NodeStatus::Invalid);
                match self.dm.cas(original, idle, inv) {
                    Ok(prev) if prev == idle => {
                        let SphinxClient { dm, reclaim, .. } = self;
                        reclaim.retire(dm, original, InnerNode::byte_size(orig_kind) as u64);
                        true
                    }
                    // Lost the control word: its new owner (a racing
                    // switch) invalidates and retires it on completion.
                    Ok(_) => true,
                    Err(_) => false,
                }
            }
            // Locked mid-switch: if the switch completes it retires the
            // node itself; if it bails the node returns to Idle. Re-probe.
            _ => false,
        }
    }
}

/// What a deferred re-probe concluded (see the module comment above
/// [`SphinxClient::probe_ambiguous`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProbeVerdict {
    /// The tree serves our region: the install survived the type switch.
    Adopted,
    /// The replaced word is still linked: the install never landed.
    NotAdopted,
    /// A third party has since taken ownership of whichever word won.
    ThirdParty,
    /// The evidence is inconclusive; probe again later.
    Unknown,
}
