//! Batched point lookups — an extension beyond the paper.
//!
//! Sphinx's three-round-trip lookup pipeline (hash bucket → inner node →
//! leaf) has no data dependencies *between* different keys, so N lookups
//! can share the same three doorbell-batched round trips: all bucket
//! pairs in one batch, all inner nodes in the next, all leaves in the
//! third. Keys whose fast path fails anywhere (filter miss, stale entry,
//! false positive) fall back to the ordinary [`SphinxClient::get`] —
//! correctness is never traded for batching.

use art_core::hash::{fp12, prefix_hash42, prefix_hash64};
use art_core::layout::{HashEntry, InnerNode, LeafNode, NodeStatus, Slot};
use dm_sim::{RemotePtr, Transport};
use obs::{OpKind, Phase};
use race_hash::RaceTable;

use crate::client::SphinxClient;
use crate::config::CacheMode;
use crate::error::SphinxError;

/// Per-key pipeline state.
enum Lane {
    /// Still in the pipeline: candidate prefix length and current target.
    Fetching {
        prefix_len: usize,
        target: RemotePtr,
        kind: art_core::NodeKind,
    },
    /// Needs the slow path.
    Fallback,
    /// Finished.
    Done(Option<Vec<u8>>),
}

impl SphinxClient {
    /// Looks up many keys at once, sharing round trips across keys.
    ///
    /// Results are positionally aligned with `keys`. With a warm filter
    /// cache the whole batch costs **three round trips** regardless of
    /// batch size (plus a slow-path lookup per key that hit a stale or
    /// cold path).
    ///
    /// # Errors
    ///
    /// Same classes as [`SphinxClient::get`].
    ///
    /// # Examples
    ///
    /// ```
    /// # use dm_sim::{ClusterConfig, DmCluster};
    /// # use sphinx::{SphinxConfig, SphinxIndex};
    /// # fn main() -> Result<(), sphinx::SphinxError> {
    /// # let cluster = DmCluster::new(ClusterConfig::default());
    /// # let index = SphinxIndex::create(&cluster, SphinxConfig::default())?;
    /// # let mut client = index.client(0)?;
    /// client.insert(b"k1", b"v1")?;
    /// client.insert(b"k2", b"v2")?;
    /// let hits = client.multi_get(&[b"k1".as_slice(), b"missing", b"k2"])?;
    /// assert_eq!(hits[0].as_deref(), Some(&b"v1"[..]));
    /// assert_eq!(hits[1], None);
    /// assert_eq!(hits[2].as_deref(), Some(&b"v2"[..]));
    /// # Ok(())
    /// # }
    /// ```
    pub fn multi_get(&mut self, keys: &[&[u8]]) -> Result<Vec<Option<Vec<u8>>>, SphinxError> {
        if keys.is_empty() {
            return Ok(Vec::new());
        }
        if self.config.mode != CacheMode::FilterCache || keys.len() == 1 {
            // The batched pipeline builds on the filter cache; the
            // INHT-only mode already batches per key.
            return keys.iter().map(|k| self.get(k)).collect();
        }
        // The span covers the batched pipeline; per-key slow-path
        // fallbacks below record their own Get spans.
        self.obs_begin(OpKind::MultiGet);
        // Stage 0: candidate prefix per key (local filter checks).
        self.obs_phase(Phase::SfcProbe);
        let mut lanes: Vec<Lane> = Vec::with_capacity(keys.len());
        let mut prefix_lens = Vec::with_capacity(keys.len());
        for key in keys {
            prefix_lens.push(self.filter.deepest_hit(key, key.len()));
        }

        // Stage 1: all hash-bucket pairs in one round trip.
        self.obs_phase(Phase::InhtLookup);
        let mut bucket_reads = Vec::with_capacity(keys.len());
        let mut bases = Vec::with_capacity(keys.len());
        for (key, &plen) in keys.iter().zip(&prefix_lens) {
            let h = prefix_hash64(&key[..plen]);
            let mn = self.dm.place(h) as usize;
            let base = self.tables[mn].bucket_pair_ptr(h)?;
            bucket_reads.push((base, RaceTable::pair_len()));
            bases.push((base, h));
        }
        let reads = self.dm.read_many(&bucket_reads)?;
        for ((key, &plen), ((base, h), bytes)) in keys
            .iter()
            .zip(&prefix_lens)
            .zip(bases.into_iter().zip(reads))
        {
            let lane = match RaceTable::parse_pair(base, &bytes, h) {
                None => Lane::Fallback, // stale directory
                Some(entries) => {
                    let fp = fp12(&key[..plen]);
                    match entries
                        .iter()
                        .filter_map(|e| HashEntry::decode(e.word))
                        .find(|he| he.fp == fp)
                    {
                        Some(he) => Lane::Fetching {
                            prefix_len: plen,
                            target: he.addr,
                            kind: he.kind,
                        },
                        None => {
                            // Filter false positive or a cold ladder; the
                            // slow path recounts, but the disproven filter
                            // hit is observed here.
                            if plen > 0 {
                                self.filter.record_false_positive();
                            }
                            Lane::Fallback
                        }
                    }
                }
            };
            lanes.push(lane);
        }

        // Stage 2: all inner nodes in one round trip; resolve each key to
        // a leaf pointer (keys needing deeper descent fall back).
        self.obs_phase(Phase::Traversal);
        let mut inner_reads = Vec::new();
        let mut idxs = Vec::new();
        for (i, lane) in lanes.iter().enumerate() {
            if let Lane::Fetching { target, kind, .. } = lane {
                inner_reads.push((*target, InnerNode::byte_size(*kind)));
                idxs.push(i);
            }
        }
        let reads = self.dm.read_many(&inner_reads)?;
        let mut leaf_targets: Vec<(usize, Slot)> = Vec::new();
        for (i, bytes) in idxs.into_iter().zip(reads) {
            let key = keys[i];
            let Lane::Fetching {
                prefix_len, kind, ..
            } = lanes[i]
            else {
                unreachable!()
            };
            let lane = match InnerNode::decode(&bytes) {
                Ok(node)
                    if node.header.status != NodeStatus::Invalid
                        && node.header.kind == kind
                        && node.header.prefix_len as usize == prefix_len
                        && node.header.prefix_hash42 == prefix_hash42(&key[..prefix_len]) =>
                {
                    let plen = prefix_len;
                    if key.len() == plen {
                        match node.value_slot {
                            Some(slot) => {
                                leaf_targets.push((i, slot));
                                continue;
                            }
                            None => Lane::Done(None),
                        }
                    } else {
                        match node.find_child(key[plen]) {
                            Some((_, slot)) if slot.is_leaf => {
                                leaf_targets.push((i, slot));
                                continue;
                            }
                            // Deeper inner child: the filter was stale for
                            // the longer prefix — slow path handles it
                            // (and refreshes the filter).
                            Some(_) => Lane::Fallback,
                            None => Lane::Done(None),
                        }
                    }
                }
                _ => Lane::Fallback,
            };
            lanes[i] = lane;
        }

        // Stage 3: all leaves in one round trip.
        self.obs_phase(Phase::LeafRead);
        let leaf_reads: Vec<_> = leaf_targets
            .iter()
            .map(|(_, slot)| (slot.addr, self.config.leaf_read_hint))
            .collect();
        let reads = self.dm.read_many(&leaf_reads)?;
        for ((i, _slot), bytes) in leaf_targets.into_iter().zip(reads) {
            lanes[i] = match LeafNode::decode(&bytes) {
                Ok(leaf) if leaf.key == keys[i] => {
                    Lane::Done((leaf.status != NodeStatus::Invalid).then_some(leaf.value))
                }
                Ok(_) => Lane::Done(None), // different key under this slot
                Err(_) => Lane::Fallback,  // torn or oversized: retry solo
            };
        }

        self.op_exit();

        // Slow path for whatever fell out of the pipeline.
        lanes
            .into_iter()
            .enumerate()
            .map(|(i, lane)| match lane {
                Lane::Done(v) => {
                    self.stats.gets += 1;
                    Ok(v)
                }
                _ => self.get(keys[i]), // counts itself
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::{SphinxConfig, SphinxIndex};
    use dm_sim::{ClusterConfig, DmCluster};

    fn setup(n: u64) -> (SphinxIndex, crate::SphinxClient) {
        let cluster = DmCluster::new(ClusterConfig::default());
        let index = SphinxIndex::create(&cluster, SphinxConfig::small()).unwrap();
        let mut client = index.client(0).unwrap();
        for i in 0..n {
            client
                .insert(format!("mget-{i:05}").as_bytes(), &i.to_le_bytes())
                .unwrap();
        }
        (index, client)
    }

    #[test]
    fn multi_get_matches_get() {
        let (_idx, mut client) = setup(500);
        let keys: Vec<Vec<u8>> = (0..600u64)
            .step_by(7)
            .map(|i| format!("mget-{i:05}").into_bytes())
            .collect();
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        let batched = client.multi_get(&refs).unwrap();
        for (key, got) in refs.iter().zip(&batched) {
            assert_eq!(
                got,
                &client.get(key).unwrap(),
                "{}",
                String::from_utf8_lossy(key)
            );
        }
    }

    #[test]
    fn multi_get_is_three_round_trips_when_warm() {
        let (_idx, mut client) = setup(300);
        let keys: Vec<Vec<u8>> = (0..100u64)
            .map(|i| format!("mget-{i:05}").into_bytes())
            .collect();
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        // Warm the filter.
        for k in &refs {
            client.get(k).unwrap();
        }
        let before = client.net_stats().round_trips;
        let res = client.multi_get(&refs).unwrap();
        let rts = client.net_stats().round_trips - before;
        assert!(res.iter().all(Option::is_some));
        assert!(
            rts <= 3 + 10,
            "100 warm lookups should take ~3 batched round trips, took {rts}"
        );
    }

    #[test]
    fn multi_get_empty_and_single() {
        let (_idx, mut client) = setup(10);
        assert!(client.multi_get(&[]).unwrap().is_empty());
        let one = client.multi_get(&[b"mget-00003".as_slice()]).unwrap();
        assert_eq!(one[0].as_deref(), Some(&3u64.to_le_bytes()[..]));
    }

    #[test]
    fn multi_get_in_inht_only_mode_falls_back_correctly() {
        let cluster = DmCluster::new(ClusterConfig::default());
        let config = crate::SphinxConfig {
            mode: crate::CacheMode::InhtOnly,
            ..crate::SphinxConfig::small()
        };
        let index = SphinxIndex::create(&cluster, config).unwrap();
        let mut client = index.client(0).unwrap();
        for i in 0..50u64 {
            client
                .insert(format!("io-{i:03}").as_bytes(), &i.to_le_bytes())
                .unwrap();
        }
        let keys: Vec<Vec<u8>> = (0..60u64)
            .map(|i| format!("io-{i:03}").into_bytes())
            .collect();
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        let got = client.multi_get(&refs).unwrap();
        for (i, g) in got.iter().enumerate() {
            if i < 50 {
                assert_eq!(g.as_deref(), Some(&(i as u64).to_le_bytes()[..]));
            } else {
                assert_eq!(*g, None);
            }
        }
    }

    #[test]
    fn multi_get_mixed_hits_and_misses() {
        let (_idx, mut client) = setup(50);
        let res = client
            .multi_get(&[
                b"mget-00001".as_slice(),
                b"nope",
                b"mget-00049",
                b"mget-00050",
            ])
            .unwrap();
        assert!(res[0].is_some());
        assert_eq!(res[1], None);
        assert!(res[2].is_some());
        assert_eq!(res[3], None, "key 50 was never inserted");
    }
}
