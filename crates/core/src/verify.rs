//! Offline integrity verification: walk the remote tree and cross-check
//! every structural invariant Sphinx relies on.
//!
//! Used by the test suite after concurrency torture runs, and available to
//! operators as a consistency audit. Checks, per inner node:
//!
//! * the header decodes, with a sane status and a prefix length strictly
//!   greater than its parent's;
//! * the 42-bit full-prefix hash matches the node's actual prefix
//!   (reconstructed from any leaf in its subtree — every leaf shares it);
//! * the Inner Node Hash Table holds exactly one matching entry (right
//!   fingerprint, address, and node kind) for the node's prefix;
//! * every child leaf decodes with a valid checksum, starts with the
//!   node's prefix, and dispatches on the slot's key byte;
//! * the value-slot leaf (if any) has key == prefix.

use art_core::hash::{fp12, prefix_hash42, prefix_hash64};
use art_core::layout::{HashEntry, InnerNode, LeafNode, NodeStatus, Slot};
use race_hash::RaceTable;

use crate::error::SphinxError;
use crate::index::SphinxIndex;

/// Outcome of [`SphinxIndex::verify`].
#[derive(Debug, Clone, Default)]
pub struct IntegrityReport {
    /// Inner nodes visited.
    pub inner_nodes: usize,
    /// Live leaves visited (tombstoned leaves are skipped, not counted).
    pub leaves: usize,
    /// Deepest prefix length observed.
    pub max_prefix_len: usize,
    /// Inner Node Hash Table entries validated.
    pub inht_entries_checked: usize,
    /// Human-readable descriptions of every violation found.
    pub problems: Vec<String>,
}

impl IntegrityReport {
    /// Whether the index passed every check.
    pub fn is_clean(&self) -> bool {
        self.problems.is_empty()
    }
}

impl SphinxIndex {
    /// Audits the whole index. Run only on a quiescent index — concurrent
    /// writers make transient states (locked nodes, half-published splits)
    /// look like violations.
    ///
    /// # Errors
    ///
    /// Propagates substrate errors; structural *violations* are reported
    /// in the [`IntegrityReport`], not as errors.
    pub fn verify(&self) -> Result<IntegrityReport, SphinxError> {
        let mut dm = self.cluster().client(0);
        let mut tables = self
            .inht_metas()
            .iter()
            .map(|&m| RaceTable::open(&mut dm, m))
            .collect::<Result<Vec<_>, _>>()?;
        let mut report = IntegrityReport::default();

        // Root via the hash table.
        let root_hash = prefix_hash64(&[]);
        let root_mn = dm.place(root_hash) as usize;
        let found = tables[root_mn].search(&mut dm, root_hash)?;
        let Some(root_entry) = found
            .iter()
            .filter_map(|e| HashEntry::decode(e.word))
            .find(|he| he.fp == fp12(&[]))
        else {
            report.problems.push("root hash entry missing".into());
            return Ok(report);
        };

        // (node ptr, expected kind, parent prefix len, parent prefix known?)
        let mut queue = vec![(root_entry.addr, root_entry.kind, 0usize)];
        while let Some((ptr, kind, parent_len)) = queue.pop() {
            let bytes = dm.read(ptr, InnerNode::byte_size(kind))?;
            let node = match InnerNode::decode(&bytes) {
                Ok(n) => n,
                Err(e) => {
                    report
                        .problems
                        .push(format!("node {ptr}: undecodable: {e}"));
                    continue;
                }
            };
            report.inner_nodes += 1;
            let plen = node.header.prefix_len as usize;
            report.max_prefix_len = report.max_prefix_len.max(plen);
            if node.header.status != NodeStatus::Idle {
                report.problems.push(format!(
                    "node {ptr}: status {:?} on quiescent index",
                    node.header.status
                ));
            }
            if node.header.kind != kind {
                report.problems.push(format!(
                    "node {ptr}: kind {:?} does not match pointing slot {kind:?}",
                    node.header.kind
                ));
                continue;
            }
            if plen < parent_len || (plen == parent_len && parent_len != 0) {
                report.problems.push(format!(
                    "node {ptr}: prefix length {plen} does not extend parent ({parent_len})"
                ));
            }

            // Reconstruct the node's full prefix from any leaf below it.
            let prefix = match self.sample_key(&mut dm, &node)? {
                Some(key) if key.len() >= plen => key[..plen].to_vec(),
                Some(key) => {
                    report.problems.push(format!(
                        "node {ptr}: sampled leaf key shorter ({}) than prefix length {plen}",
                        key.len()
                    ));
                    continue;
                }
                None if plen == 0 => Vec::new(), // an empty root is legal
                None => {
                    report.problems.push(format!("node {ptr}: empty subtree"));
                    continue;
                }
            };
            if node.header.prefix_hash42 != prefix_hash42(&prefix) {
                report.problems.push(format!(
                    "node {ptr}: full-prefix hash mismatch for {:?}",
                    String::from_utf8_lossy(&prefix)
                ));
            }

            // The INHT must name this node.
            let h = prefix_hash64(&prefix);
            let mn = dm.place(h) as usize;
            let entries = tables[mn].search(&mut dm, h)?;
            let matching: Vec<HashEntry> = entries
                .iter()
                .filter_map(|e| HashEntry::decode(e.word))
                .filter(|he| he.fp == fp12(&prefix) && he.addr == ptr)
                .collect();
            report.inht_entries_checked += 1;
            match matching.as_slice() {
                [] => report.problems.push(format!(
                    "node {ptr}: no hash entry for prefix {:?}",
                    String::from_utf8_lossy(&prefix)
                )),
                [one] => {
                    if one.kind != node.header.kind {
                        report.problems.push(format!(
                            "node {ptr}: hash entry kind {:?} != node kind {:?}",
                            one.kind, node.header.kind
                        ));
                    }
                }
                _ => report
                    .problems
                    .push(format!("node {ptr}: duplicate hash entries for its prefix")),
            }

            // Value slot: key must equal the prefix exactly.
            if let Some(slot) = node.value_slot {
                match self.check_leaf(&mut dm, &slot, &prefix, None, &mut report)? {
                    Some(key) if key != prefix => report.problems.push(format!(
                        "node {ptr}: value-slot key {:?} != prefix {:?}",
                        String::from_utf8_lossy(&key),
                        String::from_utf8_lossy(&prefix)
                    )),
                    _ => {}
                }
            }

            // Children.
            let mut seen_bytes = std::collections::HashSet::new();
            for slot in node.slots.iter().flatten() {
                if !seen_bytes.insert(slot.key_byte) {
                    report.problems.push(format!(
                        "node {ptr}: duplicate dispatch byte {:#x}",
                        slot.key_byte
                    ));
                }
                if slot.is_leaf {
                    self.check_leaf(&mut dm, slot, &prefix, Some(slot.key_byte), &mut report)?;
                } else {
                    queue.push((slot.addr, slot.child_kind, plen));
                }
            }
        }
        Ok(report)
    }

    /// Any live leaf key from the subtree of `node`.
    fn sample_key(
        &self,
        dm: &mut dm_sim::DmClient,
        node: &InnerNode,
    ) -> Result<Option<Vec<u8>>, SphinxError> {
        let mut current = node.clone();
        for _ in 0..64 {
            let slot = match current
                .value_slot
                .or_else(|| current.slots.iter().flatten().next().copied())
            {
                Some(s) => s,
                None => return Ok(None),
            };
            if slot.is_leaf {
                let bytes = dm.read(slot.addr, self.config().leaf_read_hint.max(64))?;
                return Ok(LeafNode::decode(&bytes).ok().map(|l| l.key));
            }
            let bytes = dm.read(slot.addr, InnerNode::byte_size(slot.child_kind))?;
            match InnerNode::decode(&bytes) {
                Ok(n) => current = n,
                Err(_) => return Ok(None),
            }
        }
        Ok(None)
    }

    /// Decodes and checks one leaf; returns its key when live.
    fn check_leaf(
        &self,
        dm: &mut dm_sim::DmClient,
        slot: &Slot,
        prefix: &[u8],
        dispatch: Option<u8>,
        report: &mut IntegrityReport,
    ) -> Result<Option<Vec<u8>>, SphinxError> {
        let mut len = self.config().leaf_read_hint.max(64);
        let leaf = loop {
            let bytes = dm.read(slot.addr, len)?;
            let units = ((u64::from_le_bytes(bytes[0..8].try_into().expect("8 bytes")) >> 8) & 0xFF)
                as usize;
            if units.max(1) * 64 > len {
                len = units * 64;
                continue;
            }
            match LeafNode::decode(&bytes) {
                Ok(l) => break l,
                Err(e) => {
                    report
                        .problems
                        .push(format!("leaf {}: undecodable: {e}", slot.addr));
                    return Ok(None);
                }
            }
        };
        if leaf.status == NodeStatus::Invalid {
            // Tombstone awaiting unlink; structurally fine.
            return Ok(None);
        }
        report.leaves += 1;
        if !leaf.key.starts_with(prefix) {
            report.problems.push(format!(
                "leaf {}: key {:?} does not start with parent prefix {:?}",
                slot.addr,
                String::from_utf8_lossy(&leaf.key),
                String::from_utf8_lossy(prefix)
            ));
        }
        if let Some(byte) = dispatch {
            if leaf.key.get(prefix.len()) != Some(&byte) {
                report.problems.push(format!(
                    "leaf {}: dispatch byte {byte:#x} does not match key",
                    slot.addr
                ));
            }
        }
        Ok(Some(leaf.key))
    }
}

#[cfg(test)]
mod tests {
    use crate::{SphinxConfig, SphinxIndex};
    use dm_sim::{ClusterConfig, DmCluster};

    #[test]
    fn fresh_index_verifies_clean() {
        let cluster = DmCluster::new(ClusterConfig::default());
        let index = SphinxIndex::create(&cluster, SphinxConfig::small()).unwrap();
        let report = index.verify().unwrap();
        assert!(report.is_clean(), "{:?}", report.problems);
        assert_eq!(report.inner_nodes, 1, "just the root");
    }

    #[test]
    fn populated_index_verifies_clean() {
        let cluster = DmCluster::new(ClusterConfig::default());
        let index = SphinxIndex::create(&cluster, SphinxConfig::small()).unwrap();
        let mut client = index.client(0).unwrap();
        for i in 0..2000u64 {
            let key = format!("verify-key-{:06}", i * 37 % 5000);
            client.insert(key.as_bytes(), &i.to_le_bytes()).unwrap();
        }
        for i in (0..2000u64).step_by(5) {
            let key = format!("verify-key-{:06}", i * 37 % 5000);
            client.remove(key.as_bytes()).unwrap();
        }
        let report = index.verify().unwrap();
        assert!(report.is_clean(), "{:?}", report.problems);
        assert!(report.inner_nodes > 10);
        assert!(report.leaves > 500);
        assert_eq!(report.inht_entries_checked, report.inner_nodes);
    }

    #[test]
    fn verify_catches_injected_corruption() {
        let cluster = DmCluster::new(ClusterConfig::default());
        let index = SphinxIndex::create(&cluster, SphinxConfig::small()).unwrap();
        let mut client = index.client(0).unwrap();
        for w in ["corrupt-a", "corrupt-b", "corrupt-c"] {
            client.insert(w.as_bytes(), b"v").unwrap();
        }
        // Break the inner node's prefix hash (word 1) wherever it lives.
        let h42 = art_core::hash::prefix_hash42(b"corrupt-");
        let mut hit = false;
        for mn_id in 0..cluster.num_mns() {
            let mn = cluster.mn(mn_id).unwrap();
            let mut buf = vec![0u8; mn.capacity()];
            mn.read_bytes(0, &mut buf).unwrap();
            for off in (0..buf.len() - 8).step_by(8) {
                if u64::from_le_bytes(buf[off..off + 8].try_into().unwrap()) == h42 {
                    mn.store_u64(off as u64, h42 ^ 0b100).unwrap();
                    hit = true;
                }
            }
        }
        assert!(hit, "inner node for 'corrupt-' not found");
        let report = index.verify().unwrap();
        assert!(!report.is_clean(), "corruption must be reported");
    }
}
