//! Range scans (§IV "Scan"): root-down traversal with doorbell-batched
//! level reads.

use art_core::layout::{InnerNode, LeafNode, NodeStatus, Slot};
use dm_sim::Transport;
use node_engine::LeafReadStats;
use obs::{OpKind, Phase};

use crate::client::SphinxClient;
use crate::error::SphinxError;

/// A node queued for reading during a scan, with the prefix bytes known
/// so far. `exact` records whether `known_prefix` is the node's complete
/// full prefix up to this point: path compression hides bytes, and once a
/// gap appears the concatenation of dispatch bytes is *not* a real key
/// prefix, so pruning must stop (leaf-level filtering keeps the scan
/// correct).
struct Pending {
    slot: Slot,
    known_prefix: Vec<u8>,
    exact: bool,
}

impl SphinxClient {
    /// Returns every `(key, value)` with `low <= key <= high`, in
    /// ascending key order.
    ///
    /// The traversal starts from the root (found through the Inner Node
    /// Hash Table) and reads each level's nodes in one doorbell-batched
    /// round trip, hiding per-node latency exactly as the paper describes
    /// for YCSB-E.
    ///
    /// # Errors
    ///
    /// Propagates substrate errors; torn leaf reads are retried
    /// internally.
    #[allow(clippy::type_complexity)]
    pub fn scan(
        &mut self,
        low: &[u8],
        high: &[u8],
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>, SphinxError> {
        self.stats.scans += 1;
        self.obs_begin(OpKind::Scan);
        let r = self.scan_inner(low, high);
        self.op_exit();
        r
    }

    #[allow(clippy::type_complexity)]
    fn scan_inner(
        &mut self,
        low: &[u8],
        high: &[u8],
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>, SphinxError> {
        let mut results: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        if low > high {
            return Ok(results);
        }

        // Root via the hash table (prefix ε).
        let (root_ptr, root, _len) = self.entry_node(&[], 0)?;
        let mut inners: Vec<(InnerNode, Vec<u8>, bool)> = vec![(root, Vec::new(), true)];
        let _ = root_ptr;
        self.obs_phase(Phase::Traversal);

        while !inners.is_empty() {
            // Resolution pass: a node whose known prefix is shorter than
            // its actual prefix (path compression) cannot be pruned — but
            // any direct leaf child reveals the full prefix. One batched
            // round trip recovers exactness for the whole level, keeping
            // scans proportional to the result size instead of the
            // subtree size.
            let mut resolve_targets: Vec<usize> = Vec::new();
            let mut chain_targets: Vec<usize> = Vec::new();
            let mut resolve_reads = Vec::new();
            for (i, (node, known, exact)) in inners.iter().enumerate() {
                let exact_here = *exact && node.header.prefix_len as usize == known.len();
                if exact_here {
                    continue;
                }
                let leaf_slot = node
                    .value_slot
                    .or_else(|| node.slots.iter().flatten().find(|s| s.is_leaf).copied());
                match leaf_slot {
                    Some(slot) => {
                        resolve_reads.push((slot.addr, self.config.leaf_read_hint));
                        resolve_targets.push(i);
                    }
                    // No direct leaf child: resolve by walking the
                    // leftmost chain (uniform-depth trees keep all leaves
                    // at the bottom, so this is the only source of
                    // prefix bytes for upper nodes).
                    None => chain_targets.push(i),
                }
            }
            if !resolve_reads.is_empty() {
                let reads = self.dm.read_many(&resolve_reads)?;
                for (i, bytes) in resolve_targets.into_iter().zip(reads) {
                    if let Ok(leaf) = LeafNode::decode(&bytes) {
                        let (node, known, exact) = &mut inners[i];
                        let plen = node.header.prefix_len as usize;
                        if leaf.key.len() >= plen {
                            *known = leaf.key[..plen].to_vec();
                            *exact = true;
                        }
                    }
                }
            }
            for i in chain_targets {
                let node = inners[i].0.clone();
                if let Some(leaf) = self.sample_leaf(&node)? {
                    let (node, known, exact) = &mut inners[i];
                    let plen = node.header.prefix_len as usize;
                    if leaf.key.len() >= plen {
                        *known = leaf.key[..plen].to_vec();
                        *exact = true;
                    }
                }
            }

            // Collect the next level's reads, pruning subtrees whose known
            // prefix already falls outside the range (only where the known
            // prefix is exact).
            let mut pending: Vec<Pending> = Vec::new();
            for (node, known, exact) in inners.drain(..) {
                // Is the known prefix complete up to this node's prefix
                // end? If the node's prefix extends past what we tracked,
                // a compression gap begins below it.
                let exact_here = exact && node.header.prefix_len as usize == known.len();
                if exact_here && !range_may_intersect(&known, low, high) {
                    continue; // the resolved prefix proves the subtree is out of range
                }
                if let Some(slot) = node.value_slot {
                    pending.push(Pending {
                        slot,
                        known_prefix: known.clone(),
                        exact: exact_here,
                    });
                }
                for slot in node.children_sorted() {
                    let (child_known, child_exact) = if exact_here {
                        let mut ck = known.clone();
                        ck.push(slot.key_byte);
                        (ck, true)
                    } else {
                        (known.clone(), false)
                    };
                    if child_exact && !range_may_intersect(&child_known, low, high) {
                        continue;
                    }
                    pending.push(Pending {
                        slot,
                        known_prefix: child_known,
                        exact: child_exact,
                    });
                }
            }
            if pending.is_empty() {
                break;
            }
            // One doorbell batch for the whole level.
            let level_reads: Vec<_> = pending
                .iter()
                .map(|p| {
                    let len = if p.slot.is_leaf {
                        self.config.leaf_read_hint
                    } else {
                        InnerNode::byte_size(p.slot.child_kind)
                    };
                    (p.slot.addr, len)
                })
                .collect();
            let reads = self.dm.read_many(&level_reads)?;

            for (p, bytes) in pending.into_iter().zip(reads) {
                if p.slot.is_leaf {
                    let leaf = self.decode_scanned_leaf(&p, &bytes)?;
                    if let Some(leaf) = leaf {
                        if leaf.status != NodeStatus::Invalid
                            && leaf.key.as_slice() >= low
                            && leaf.key.as_slice() <= high
                        {
                            results.push((leaf.key, leaf.value));
                        }
                    }
                } else {
                    match InnerNode::decode(&bytes) {
                        Ok(node)
                            if node.header.status != NodeStatus::Invalid
                                && node.header.kind == p.slot.child_kind =>
                        {
                            inners.push((node, p.known_prefix, p.exact));
                        }
                        // Mid-type-switch: re-read through a fresh pointer.
                        _ => {
                            if let Some(node) = self.reread_inner(&p)? {
                                inners.push((node, p.known_prefix, p.exact));
                            }
                        }
                    }
                }
            }
        }
        results.sort_by(|a, b| a.0.cmp(&b.0));
        results.dedup_by(|a, b| a.0 == b.0);
        Ok(results)
    }

    fn decode_scanned_leaf(
        &mut self,
        p: &Pending,
        bytes: &[u8],
    ) -> Result<Option<LeafNode>, SphinxError> {
        match LeafNode::decode(bytes) {
            Ok(leaf) => Ok(Some(leaf)),
            Err(_) => {
                // Torn or larger-than-hint: fall back to the retrying
                // reader.
                let mut io = LeafReadStats::default();
                let r = node_engine::read_validated_leaf(
                    &mut self.dm,
                    p.slot.addr,
                    self.config.leaf_read_hint,
                    &self.retry,
                    &mut io,
                );
                self.stats.checksum_retries += io.checksum_retries;
                self.stats.extended_leaf_reads += io.extended_reads;
                match r {
                    Ok(leaf) => Ok(Some(leaf)),
                    Err(node_engine::EngineError::RetriesExhausted { .. }) => Ok(None),
                    Err(e) => Err(e.into()),
                }
            }
        }
    }

    /// A node observed mid type-switch during a scan: wait briefly and
    /// follow the (updated) slot once more. Gives up quietly — the
    /// replacement node is reachable through its parent on the next scan.
    fn reread_inner(&mut self, p: &Pending) -> Result<Option<InnerNode>, SphinxError> {
        for _ in 0..8 {
            self.dm.advance_clock(400);
            std::thread::yield_now();
            let bytes = self
                .dm
                .read(p.slot.addr, InnerNode::byte_size(p.slot.child_kind))?;
            if let Ok(node) = InnerNode::decode(&bytes) {
                if node.header.status == NodeStatus::Idle && node.header.kind == p.slot.child_kind {
                    return Ok(Some(node));
                }
            }
        }
        Ok(None)
    }
}

/// Whether a subtree whose keys all start with `known` (plus unknown
/// compressed bytes) can contain keys in `[low, high]`.
fn range_may_intersect(known: &[u8], low: &[u8], high: &[u8]) -> bool {
    // Keys in the subtree are >= known (extended), so if known > high the
    // subtree is entirely above the range.
    if known > high {
        return false;
    }
    // All keys start with `known`; if known < low and low does not start
    // with known, every extension still compares below low.
    if known < low && !low.starts_with(known) {
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersect_logic() {
        assert!(range_may_intersect(b"b", b"a", b"c"));
        assert!(range_may_intersect(b"a", b"ab", b"c")); // low starts with known
        assert!(!range_may_intersect(b"d", b"a", b"c")); // above range
        assert!(!range_may_intersect(b"a", b"b", b"c")); // below, not prefix of low
        assert!(range_may_intersect(b"", b"x", b"y")); // root always viable
    }
}
