//! The CN-side node cache used by the SMART baseline: a byte-budgeted LRU
//! over decoded inner nodes, keyed by remote address.

use std::collections::{BTreeMap, HashMap};

use art_core::layout::InnerNode;
use dm_sim::RemotePtr;

/// A byte-budgeted LRU cache of inner nodes.
///
/// Shared by all workers on a compute node (wrap in a mutex), matching the
/// paper's per-CN cache whose size is the headline parameter of §V
/// ("The CN-side cache size of SMART and Sphinx is set to 20 MB").
#[derive(Debug)]
pub struct NodeCache {
    budget: usize,
    used: usize,
    gen: u64,
    nodes: HashMap<u64, (InnerNode, u64, usize)>, // addr -> (node, gen, bytes)
    lru: BTreeMap<u64, u64>,                      // gen -> addr
    hits: u64,
    misses: u64,
}

impl NodeCache {
    /// Creates a cache bounded by `budget` bytes of node payload.
    pub fn new(budget: usize) -> Self {
        NodeCache {
            budget,
            used: 0,
            gen: 0,
            nodes: HashMap::new(),
            lru: BTreeMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Budget in bytes.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Bytes currently cached.
    pub fn used_bytes(&self) -> usize {
        self.used
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Looks up a node by address; a hit refreshes its recency.
    pub fn get(&mut self, addr: RemotePtr) -> Option<InnerNode> {
        let key = addr.to_raw();
        match self.nodes.get_mut(&key) {
            Some((node, gen, _)) => {
                self.lru.remove(gen);
                self.gen += 1;
                *gen = self.gen;
                self.lru.insert(self.gen, key);
                self.hits += 1;
                Some(node.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts or refreshes a node, evicting the least recently used
    /// entries until the budget is met.
    pub fn put(&mut self, addr: RemotePtr, node: InnerNode) {
        let key = addr.to_raw();
        let bytes = InnerNode::byte_size(node.header.kind);
        if bytes > self.budget {
            return;
        }
        if let Some((_, gen, old_bytes)) = self.nodes.remove(&key) {
            self.lru.remove(&gen);
            self.used -= old_bytes;
        }
        while self.used + bytes > self.budget {
            let Some((&g, &victim)) = self.lru.iter().next() else {
                break;
            };
            self.lru.remove(&g);
            if let Some((_, _, b)) = self.nodes.remove(&victim) {
                self.used -= b;
            }
        }
        self.gen += 1;
        self.nodes.insert(key, (node, self.gen, bytes));
        self.lru.insert(self.gen, key);
        self.used += bytes;
    }

    /// Drops a node (after observing it stale or retired).
    pub fn invalidate(&mut self, addr: RemotePtr) {
        if let Some((_, gen, bytes)) = self.nodes.remove(&addr.to_raw()) {
            self.lru.remove(&gen);
            self.used -= bytes;
        }
    }

    /// Number of cached nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use art_core::NodeKind;

    fn node(tag: u8) -> InnerNode {
        InnerNode::new(NodeKind::Node4, &[tag])
    }

    fn addr(i: u64) -> RemotePtr {
        RemotePtr::new(0, 64 + i * 64)
    }

    #[test]
    fn put_get_roundtrip() {
        let mut c = NodeCache::new(1 << 20);
        c.put(addr(1), node(1));
        assert_eq!(
            c.get(addr(1)).unwrap().header.prefix_hash42,
            node(1).header.prefix_hash42
        );
        assert!(c.get(addr(2)).is_none());
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn budget_evicts_lru() {
        // Node4 is 56 bytes; budget for ~3 nodes.
        let mut c = NodeCache::new(180);
        c.put(addr(1), node(1));
        c.put(addr(2), node(2));
        c.put(addr(3), node(3));
        // Touch 1 so 2 becomes the LRU victim.
        c.get(addr(1));
        c.put(addr(4), node(4));
        assert!(c.get(addr(1)).is_some());
        assert!(c.get(addr(2)).is_none(), "LRU entry should be evicted");
        assert!(c.get(addr(4)).is_some());
        assert!(c.used_bytes() <= 180);
    }

    #[test]
    fn invalidate_removes() {
        let mut c = NodeCache::new(1 << 20);
        c.put(addr(1), node(1));
        c.invalidate(addr(1));
        assert!(c.get(addr(1)).is_none());
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn reput_same_address_replaces() {
        let mut c = NodeCache::new(1 << 20);
        c.put(addr(1), node(1));
        c.put(addr(1), node(2));
        assert_eq!(c.len(), 1);
        assert_eq!(
            c.get(addr(1)).unwrap().header.prefix_hash42,
            node(2).header.prefix_hash42
        );
    }

    #[test]
    fn oversized_node_is_skipped() {
        let mut c = NodeCache::new(10);
        c.put(addr(1), node(1));
        assert!(c.is_empty());
    }
}
