//! Baseline index operations: root-to-leaf traversal (with optional node
//! cache), inserts with splits and type switches, updates, deletes, scans.

use art_core::hash::prefix_hash42;
use art_core::key::{common_prefix_len, MAX_KEY_LEN};
use art_core::layout::{InnerNode, LeafNode, NodeStatus, Slot, VALUE_SLOT_OFFSET};
use dm_sim::{RemotePtr, Transport};
use node_engine::{
    cas_locked_write, retire_inner, retire_leaf, write_new_inner, write_new_leaf, Install,
    LeafReadStats,
};
use obs::{OpKind, Phase};

use crate::error::BaselineError;
use crate::index::BaselineClient;

/// Where the traversal ended.
#[derive(Debug)]
enum BOutcome {
    Leaf {
        offset: u64,
        slot: Slot,
        leaf: LeafNode,
    },
    NoValueSlot,
    Empty {
        byte: u8,
    },
    Divergent {
        slot_idx: usize,
        slot: Slot,
        child: InnerNode,
        sample: LeafNode,
    },
}

/// A completed traversal: the deepest inner node whose prefix prefixes the
/// key, with the location of the slot pointing *to* that node (needed for
/// type switches — `None` parent means the node is the root, pointed to by
/// the meta word).
#[derive(Debug)]
struct Located {
    parent_node_ptr: Option<RemotePtr>,
    parent_word_ptr: RemotePtr,
    parent_expected: u64,
    node: InnerNode,
    node_ptr: RemotePtr,
    used_cache: bool,
    outcome: BOutcome,
}

#[allow(clippy::large_enum_variant)] // Retry is transient; Done is immediately unpacked
enum LocateResult {
    Done(Located),
    Retry,
}

impl BaselineClient {
    fn backoff(&mut self) {
        self.dm.backoff(&self.retry);
    }

    fn leaf_read_hint(&self) -> usize {
        self.meta.config.leaf_read_hint
    }

    /// The root slot word, cached client-side (refreshed when stale).
    fn root_slot(&mut self, refresh: bool) -> Result<Slot, BaselineError> {
        if refresh || self.root_slot.is_none() {
            let word = self.dm.read_u64(self.meta.root_word)?;
            self.root_slot =
                Some(Slot::decode(word).ok_or(BaselineError::Corrupt { what: "null root" })?);
        }
        Ok(self.root_slot.expect("just set"))
    }

    /// Reads an inner node, consulting the CN node cache when allowed.
    /// Returns the node and whether it came from the cache.
    fn read_inner_mc(
        &mut self,
        ptr: RemotePtr,
        kind: art_core::NodeKind,
        use_cache: bool,
    ) -> Result<(InnerNode, bool), BaselineError> {
        if use_cache {
            if let Some(cache) = &self.cache {
                if let Some(node) = cache.lock().get(ptr) {
                    if node.header.kind == kind {
                        self.obs.incr("cache.hit");
                        return Ok((node, true));
                    }
                    cache.lock().invalidate(ptr);
                }
            }
        }
        if use_cache && self.cache.is_some() {
            self.obs.incr("cache.miss");
        }
        let bytes = self.dm.read(ptr, InnerNode::byte_size(kind))?;
        let node = InnerNode::decode(&bytes)?;
        if let Some(cache) = &self.cache {
            if node.header.status == NodeStatus::Idle && node.header.kind == kind {
                cache.lock().put(ptr, node.clone());
            }
        }
        Ok((node, false))
    }

    /// Reads a leaf through the shared validated reader (torn-read retry
    /// and short-hint extension live in `node-engine` now).
    fn read_leaf(&mut self, ptr: RemotePtr) -> Result<LeafNode, BaselineError> {
        let hint = self.leaf_read_hint();
        let prev = self.obs.current_phase();
        self.obs_phase(Phase::LeafRead);
        let mut io = LeafReadStats::default();
        let res = node_engine::read_validated_leaf(&mut self.dm, ptr, hint, &self.retry, &mut io);
        self.stats.checksum_retries += io.checksum_retries;
        self.obs.add("leaf.extended_reads", io.extended_reads);
        if let Some(p) = prev {
            self.obs_phase(p);
        }
        Ok(res?)
    }

    fn invalidate_cached(&mut self, ptr: RemotePtr) {
        if let Some(cache) = &self.cache {
            cache.lock().invalidate(ptr);
        }
    }

    /// Root-to-leaf traversal. One network round trip per uncached level —
    /// the cost profile that motivates Sphinx.
    fn locate(&mut self, key: &[u8], use_cache: bool) -> Result<Located, BaselineError> {
        if key.len() > MAX_KEY_LEN {
            return Err(BaselineError::KeyTooLong { len: key.len() });
        }
        for attempt in 0..self.retry.op_retries {
            match self.locate_once(key, use_cache)? {
                LocateResult::Done(loc) => return Ok(loc),
                LocateResult::Retry => {
                    self.stats.retries += 1;
                    self.obs.retry();
                    self.obs_phase(Phase::Retry);
                    self.root_slot(true)?;
                    if attempt > 2 {
                        self.backoff();
                    }
                }
            }
        }
        Err(BaselineError::RetriesExhausted { op: "locate" })
    }

    fn locate_once(&mut self, key: &[u8], use_cache: bool) -> Result<LocateResult, BaselineError> {
        self.obs_phase(Phase::Traversal);
        let root = self.root_slot(false)?;
        let mut parent_node_ptr: Option<RemotePtr> = None;
        let mut parent_word_ptr = self.meta.root_word;
        let mut parent_expected = root.encode();
        let mut node_ptr = root.addr;
        let (mut node, mut used_cache) =
            self.read_inner_mc(root.addr, root.child_kind, use_cache)?;
        loop {
            if node.header.status == NodeStatus::Invalid {
                self.invalidate_cached(node_ptr);
                return Ok(LocateResult::Retry);
            }
            let plen = node.header.prefix_len as usize;
            let done = |outcome| {
                Ok(LocateResult::Done(Located {
                    parent_node_ptr,
                    parent_word_ptr,
                    parent_expected,
                    node: node.clone(),
                    node_ptr,
                    used_cache,
                    outcome,
                }))
            };
            if key.len() == plen {
                return match node.value_slot {
                    Some(slot) => {
                        let leaf = self.read_leaf(slot.addr)?;
                        done(BOutcome::Leaf {
                            offset: VALUE_SLOT_OFFSET,
                            slot,
                            leaf,
                        })
                    }
                    None => done(BOutcome::NoValueSlot),
                };
            }
            let byte = key[plen];
            match node.find_child(byte) {
                None => return done(BOutcome::Empty { byte }),
                Some((idx, slot)) if slot.is_leaf => {
                    let leaf = self.read_leaf(slot.addr)?;
                    return done(BOutcome::Leaf {
                        offset: InnerNode::slot_offset(idx),
                        slot,
                        leaf,
                    });
                }
                Some((idx, slot)) => {
                    let (child, hit) = self.read_inner_mc(slot.addr, slot.child_kind, use_cache)?;
                    if child.header.status == NodeStatus::Invalid
                        || child.header.kind != slot.child_kind
                    {
                        self.invalidate_cached(slot.addr);
                        self.invalidate_cached(node_ptr);
                        return Ok(LocateResult::Retry);
                    }
                    let clen = child.header.prefix_len as usize;
                    if clen <= plen {
                        self.invalidate_cached(slot.addr);
                        return Ok(LocateResult::Retry);
                    }
                    if key.len() >= clen
                        && child.header.prefix_hash42 == prefix_hash42(&key[..clen])
                    {
                        parent_node_ptr = Some(node_ptr);
                        parent_word_ptr = node_ptr.checked_add(InnerNode::slot_offset(idx))?;
                        parent_expected = slot.encode();
                        node_ptr = slot.addr;
                        node = child;
                        used_cache |= hit;
                        continue;
                    }
                    let Some(sample) = self.sample_leaf(&child)? else {
                        return Ok(LocateResult::Retry);
                    };
                    return done(BOutcome::Divergent {
                        slot_idx: idx,
                        slot,
                        child,
                        sample,
                    });
                }
            }
        }
    }

    fn sample_leaf(&mut self, node: &InnerNode) -> Result<Option<LeafNode>, BaselineError> {
        let mut current = node.clone();
        for _ in 0..self.retry.io_retries {
            let slot = match current
                .value_slot
                .or_else(|| current.slots.iter().flatten().next().copied())
            {
                Some(s) => s,
                None => return Ok(None),
            };
            if slot.is_leaf {
                return Ok(Some(self.read_leaf(slot.addr)?));
            }
            let (child, _) = self.read_inner_mc(slot.addr, slot.child_kind, false)?;
            if child.header.status == NodeStatus::Invalid || child.header.kind != slot.child_kind {
                return Ok(None);
            }
            current = child;
        }
        Ok(None)
    }

    // ------------------------------------------------------------------
    // Public operations.
    // ------------------------------------------------------------------

    /// Point lookup.
    ///
    /// # Errors
    ///
    /// [`BaselineError::KeyTooLong`] or substrate errors.
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, BaselineError> {
        self.stats.gets += 1;
        self.obs_begin(OpKind::Get);
        let r = self.get_inner(key);
        self.op_exit();
        r
    }

    fn get_inner(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, BaselineError> {
        for pass in 0..2 {
            let use_cache = pass == 0;
            let loc = self.locate(key, use_cache)?;
            match loc.outcome {
                BOutcome::Leaf { leaf, .. } if leaf.key == key => {
                    return Ok((leaf.status != NodeStatus::Invalid).then_some(leaf.value));
                }
                _ if loc.used_cache => {
                    // A stale cached node can hide recent inserts: confirm
                    // the miss with a remote traversal (our stand-in for
                    // SMART's reverse check).
                }
                _ => return Ok(None),
            }
        }
        Ok(None)
    }

    /// Inserts or overwrites `key` with `value`.
    ///
    /// # Errors
    ///
    /// [`BaselineError::RetriesExhausted`] under pathological contention,
    /// or substrate errors.
    pub fn insert(&mut self, key: &[u8], value: &[u8]) -> Result<(), BaselineError> {
        self.stats.inserts += 1;
        self.obs_begin(OpKind::Insert);
        let r = self.insert_inner(key, value);
        self.op_exit();
        r
    }

    fn insert_inner(&mut self, key: &[u8], value: &[u8]) -> Result<(), BaselineError> {
        for attempt in 0..self.retry.op_retries {
            let use_cache = attempt == 0;
            let loc = self.locate(key, use_cache)?;
            let done = match loc.outcome {
                BOutcome::Leaf {
                    offset,
                    ref slot,
                    ref leaf,
                } if leaf.key == key => {
                    if leaf.status == NodeStatus::Invalid {
                        self.swap_leaf(loc.node_ptr, offset, slot, key, value)?
                    } else {
                        self.write_leaf_value(loc.node_ptr, offset, slot, leaf, key, value)?
                    }
                }
                BOutcome::Leaf {
                    offset,
                    ref slot,
                    ref leaf,
                } => self.split_leaf(loc.node_ptr, offset, slot, leaf, key, value)?,
                BOutcome::NoValueSlot => {
                    let leaf_ptr = write_new_leaf(&mut self.dm, key, value)?;
                    let new_slot = Slot::leaf(0, leaf_ptr);
                    self.install_word(loc.node_ptr, VALUE_SLOT_OFFSET, 0, new_slot.encode())?
                        == Install::Done
                }
                BOutcome::Empty { byte } => match loc.node.free_slot(byte) {
                    Some(idx) => {
                        let leaf_ptr = write_new_leaf(&mut self.dm, key, value)?;
                        let new_slot = Slot::leaf(byte, leaf_ptr);
                        self.install_fresh_child(&loc.node, loc.node_ptr, idx, byte, new_slot, key)?
                    }
                    None => self.type_switch_insert(&loc, key, value)?,
                },
                BOutcome::Divergent {
                    slot_idx,
                    ref slot,
                    ref child,
                    ref sample,
                } => self.split_path(loc.node_ptr, slot_idx, slot, child, sample, key, value)?,
            };
            if done {
                return Ok(());
            }
            self.obs.retry();
            self.obs_phase(Phase::Retry);
            self.backoff();
        }
        Err(BaselineError::RetriesExhausted { op: "insert" })
    }

    /// Updates an existing key. Returns `false` if absent.
    ///
    /// # Errors
    ///
    /// Same classes as [`BaselineClient::insert`].
    pub fn update(&mut self, key: &[u8], value: &[u8]) -> Result<bool, BaselineError> {
        self.stats.updates += 1;
        self.obs_begin(OpKind::Update);
        let r = self.update_inner(key, value);
        self.op_exit();
        r
    }

    fn update_inner(&mut self, key: &[u8], value: &[u8]) -> Result<bool, BaselineError> {
        for attempt in 0..self.retry.op_retries {
            let use_cache = attempt == 0;
            let loc = self.locate(key, use_cache)?;
            match loc.outcome {
                BOutcome::Leaf {
                    offset,
                    ref slot,
                    ref leaf,
                } if leaf.key == key => {
                    if leaf.status == NodeStatus::Invalid {
                        return Ok(false);
                    }
                    if self.write_leaf_value(loc.node_ptr, offset, slot, leaf, key, value)? {
                        return Ok(true);
                    }
                }
                _ if loc.used_cache => {} // confirm the miss uncached
                _ => return Ok(false),
            }
            self.obs.retry();
            self.obs_phase(Phase::Retry);
            self.backoff();
        }
        Err(BaselineError::RetriesExhausted { op: "update" })
    }

    /// Deletes a key. Returns whether this client performed the deletion.
    ///
    /// # Errors
    ///
    /// Same classes as [`BaselineClient::insert`].
    pub fn remove(&mut self, key: &[u8]) -> Result<bool, BaselineError> {
        self.stats.deletes += 1;
        self.obs_begin(OpKind::Delete);
        let r = self.remove_inner(key);
        self.op_exit();
        r
    }

    fn remove_inner(&mut self, key: &[u8]) -> Result<bool, BaselineError> {
        for attempt in 0..self.retry.op_retries {
            let use_cache = attempt == 0;
            let loc = self.locate(key, use_cache)?;
            match loc.outcome {
                BOutcome::Leaf {
                    offset,
                    ref slot,
                    ref leaf,
                } if leaf.key == key => {
                    if leaf.status == NodeStatus::Invalid {
                        return Ok(false);
                    }
                    self.obs_phase(Phase::LeafWrite);
                    let (cur, inv) = leaf.status_cas_words(leaf.status, NodeStatus::Invalid);
                    if self.dm.cas(slot.addr, cur, inv)? != cur {
                        self.obs.retry();
                        self.backoff();
                        continue;
                    }
                    if self.install_word(loc.node_ptr, offset, slot.encode(), 0)? == Install::Done {
                        // Our CAS unlinked the tombstoned leaf: its region
                        // is ours to reclaim once a grace period passes.
                        let BaselineClient { dm, reclaim, .. } = self;
                        retire_leaf(dm, reclaim, slot.addr, leaf);
                    }
                    // Raced/Ambiguous: whoever replaced (or copied) the
                    // slot owns the region's retirement now.
                    return Ok(true);
                }
                _ if loc.used_cache => {}
                _ => return Ok(false),
            }
            self.obs.retry();
            self.obs_phase(Phase::Retry);
            self.backoff();
        }
        Err(BaselineError::RetriesExhausted { op: "remove" })
    }

    /// Range scan: every `(key, value)` with `low <= key <= high`, sorted.
    ///
    /// SMART reads each tree level in one doorbell batch; the plain ART
    /// port issues one read per node — the YCSB-E gap of Fig. 4.
    ///
    /// # Errors
    ///
    /// Propagates substrate errors.
    #[allow(clippy::type_complexity)]
    pub fn scan(
        &mut self,
        low: &[u8],
        high: &[u8],
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>, BaselineError> {
        self.stats.scans += 1;
        self.obs_begin(OpKind::Scan);
        let r = self.scan_inner(low, high);
        self.op_exit();
        r
    }

    #[allow(clippy::type_complexity)]
    fn scan_inner(
        &mut self,
        low: &[u8],
        high: &[u8],
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>, BaselineError> {
        self.obs_phase(Phase::Traversal);
        let mut results: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        if low > high {
            return Ok(results);
        }
        let root = self.root_slot(false)?;
        let (root_node, _) = self.read_inner_mc(root.addr, root.child_kind, true)?;
        // (node, known_prefix, exact) — see sphinx::scan for why pruning
        // is only sound while the known prefix is exact.
        let mut inners: Vec<(InnerNode, Vec<u8>, bool)> = vec![(root_node, Vec::new(), true)];
        let batched = self.meta.config.batched_scan;

        while !inners.is_empty() {
            // Resolve inexact prefixes from direct leaf children so
            // pruning stays effective under path compression (same
            // technique as sphinx::scan; one extra batched — or, for
            // plain ART, grouped — round trip per level).
            let mut resolve_targets: Vec<usize> = Vec::new();
            let mut chain_targets: Vec<usize> = Vec::new();
            let mut resolve_reads = Vec::new();
            for (i, (node, known, exact)) in inners.iter().enumerate() {
                let exact_here = *exact && node.header.prefix_len as usize == known.len();
                if exact_here {
                    continue;
                }
                let leaf_slot = node
                    .value_slot
                    .or_else(|| node.slots.iter().flatten().find(|s| s.is_leaf).copied());
                match leaf_slot {
                    Some(slot) => {
                        resolve_reads.push((slot.addr, self.leaf_read_hint()));
                        resolve_targets.push(i);
                    }
                    None => chain_targets.push(i),
                }
            }
            if !resolve_reads.is_empty() {
                let reads = self.dm.read_many(&resolve_reads)?;
                for (i, bytes) in resolve_targets.into_iter().zip(reads) {
                    if let Ok(leaf) = LeafNode::decode(&bytes) {
                        let (node, known, exact) = &mut inners[i];
                        let plen = node.header.prefix_len as usize;
                        if leaf.key.len() >= plen {
                            *known = leaf.key[..plen].to_vec();
                            *exact = true;
                        }
                    }
                }
            }
            // Upper nodes without a direct leaf child resolve by walking
            // the leftmost chain to any leaf (see sphinx::scan).
            for i in chain_targets {
                let node = inners[i].0.clone();
                if let Some(leaf) = self.sample_leaf(&node)? {
                    let (node, known, exact) = &mut inners[i];
                    let plen = node.header.prefix_len as usize;
                    if leaf.key.len() >= plen {
                        *known = leaf.key[..plen].to_vec();
                        *exact = true;
                    }
                }
            }

            let mut pending: Vec<(Slot, Vec<u8>, bool)> = Vec::new();
            for (node, known, exact) in inners.drain(..) {
                let exact_here = exact && node.header.prefix_len as usize == known.len();
                if exact_here && !range_may_intersect(&known, low, high) {
                    continue;
                }
                if let Some(slot) = node.value_slot {
                    pending.push((slot, known.clone(), exact_here));
                }
                for slot in node.children_sorted() {
                    let (ck, ce) = if exact_here {
                        let mut ck = known.clone();
                        ck.push(slot.key_byte);
                        (ck, true)
                    } else {
                        (known.clone(), false)
                    };
                    if ce && !range_may_intersect(&ck, low, high) {
                        continue;
                    }
                    pending.push((slot, ck, ce));
                }
            }
            if pending.is_empty() {
                break;
            }

            let mut fetched: Vec<(Slot, Vec<u8>, bool, Vec<u8>)> = Vec::new();
            if batched {
                let level_reads: Vec<_> = pending
                    .iter()
                    .map(|(slot, _, _)| {
                        let len = if slot.is_leaf {
                            self.leaf_read_hint()
                        } else {
                            InnerNode::byte_size(slot.child_kind)
                        };
                        (slot.addr, len)
                    })
                    .collect();
                let reads = self.dm.read_many(&level_reads)?;
                for ((slot, known, exact), bytes) in pending.into_iter().zip(reads) {
                    fetched.push((slot, known, exact, bytes));
                }
            } else {
                // Plain ART: small batches (≈ one parent node's children
                // at a time — the natural non-optimized implementation
                // reads a node's children together but does not overlap
                // across nodes), versus SMART's whole-level batching —
                // the source of the paper's 2.3–3.1× YCSB-E gap.
                for group in pending.chunks(8) {
                    let group_reads: Vec<_> = group
                        .iter()
                        .map(|(slot, _, _)| {
                            let len = if slot.is_leaf {
                                self.leaf_read_hint()
                            } else {
                                InnerNode::byte_size(slot.child_kind)
                            };
                            (slot.addr, len)
                        })
                        .collect();
                    let reads = self.dm.read_many(&group_reads)?;
                    for ((slot, known, exact), bytes) in group.iter().cloned().zip(reads) {
                        fetched.push((slot, known, exact, bytes));
                    }
                }
            }

            for (slot, known, exact, bytes) in fetched {
                if slot.is_leaf {
                    let leaf = match LeafNode::decode(&bytes) {
                        Ok(l) => l,
                        Err(_) => match self.read_leaf(slot.addr) {
                            Ok(l) => l,
                            Err(BaselineError::RetriesExhausted { .. }) => continue,
                            Err(e) => return Err(e),
                        },
                    };
                    if leaf.status != NodeStatus::Invalid
                        && leaf.key.as_slice() >= low
                        && leaf.key.as_slice() <= high
                    {
                        results.push((leaf.key, leaf.value));
                    }
                } else {
                    match InnerNode::decode(&bytes) {
                        Ok(node)
                            if node.header.status != NodeStatus::Invalid
                                && node.header.kind == slot.child_kind =>
                        {
                            inners.push((node, known, exact));
                        }
                        _ => {
                            // Transient (type switch mid-scan): skip; the
                            // subtree is reachable on the next scan.
                        }
                    }
                }
            }
        }
        results.sort_by(|a, b| a.0.cmp(&b.0));
        results.dedup_by(|a, b| a.0 == b.0);
        Ok(results)
    }

    // ------------------------------------------------------------------
    // Mutation building blocks (mirrors of the Sphinx write path, minus
    // the hash table / filter publication).
    // ------------------------------------------------------------------

    /// [`node_engine::install_word`] plus the CN cache invalidation the
    /// baselines owe their node cache.
    fn install_word(
        &mut self,
        node_ptr: RemotePtr,
        offset: u64,
        expected: u64,
        new: u64,
    ) -> Result<Install, BaselineError> {
        let r = node_engine::install_word(&mut self.dm, node_ptr, offset, expected, new)?;
        self.invalidate_cached(node_ptr);
        Ok(r)
    }

    /// Same duplicate-byte-safe fresh install as Sphinx's (see
    /// `sphinx::write_ops` for the full race analysis, including why a
    /// mid-switch landing must be resolved by waiting for the node to
    /// settle rather than by a blind undo).
    fn install_fresh_child(
        &mut self,
        node: &InnerNode,
        node_ptr: RemotePtr,
        idx: usize,
        byte: u8,
        new_slot: Slot,
        key: &[u8],
    ) -> Result<bool, BaselineError> {
        let offset = InnerNode::slot_offset(idx);
        let node_len = InnerNode::byte_size(node.header.kind);
        let (prev, bytes) = self.dm.cas_and_read(
            node_ptr.checked_add(offset)?,
            0,
            new_slot.encode(),
            node_ptr,
            node_len,
        )?;
        self.invalidate_cached(node_ptr);
        if prev != 0 {
            return Ok(false);
        }
        let now = match InnerNode::decode(&bytes) {
            Ok(n) => n,
            Err(_) => return self.resolve_settled_install(node, node_ptr, idx, byte, key),
        };
        if now.header.status != NodeStatus::Idle || now.header.kind != node.header.kind {
            return self.resolve_settled_install(node, node_ptr, idx, byte, key);
        }
        let duplicated = now
            .slots
            .iter()
            .enumerate()
            .any(|(i, s)| i != idx && s.is_some_and(|s| s.key_byte == byte));
        if duplicated {
            let _ = self
                .dm
                .cas(node_ptr.checked_add(offset)?, new_slot.encode(), 0)?;
            return Ok(false);
        }
        Ok(true)
    }

    /// See `sphinx::write_ops::resolve_settled_install`.
    fn resolve_settled_install(
        &mut self,
        node: &InnerNode,
        node_ptr: RemotePtr,
        idx: usize,
        byte: u8,
        key: &[u8],
    ) -> Result<bool, BaselineError> {
        let offset = InnerNode::slot_offset(idx);
        for _ in 0..self.retry.op_retries {
            let control = self.dm.read_u64(node_ptr)?;
            match (control & 0xFF) as u8 {
                x if x == NodeStatus::Idle as u8 => {
                    let bytes = self
                        .dm
                        .read(node_ptr, InnerNode::byte_size(node.header.kind))?;
                    let Ok(now) = InnerNode::decode(&bytes) else {
                        continue;
                    };
                    if now.header.kind != node.header.kind {
                        continue;
                    }
                    let mine = now.slots.get(idx).copied().flatten();
                    if mine.map(|s| s.key_byte) != Some(byte) {
                        return Ok(false);
                    }
                    let duplicated = now
                        .slots
                        .iter()
                        .enumerate()
                        .any(|(i, s)| i != idx && s.is_some_and(|s| s.key_byte == byte));
                    if duplicated {
                        let word = mine.expect("checked above").encode();
                        let _ = self.dm.cas(node_ptr.checked_add(offset)?, word, 0)?;
                        return Ok(false);
                    }
                    return Ok(true);
                }
                x if x == NodeStatus::Invalid as u8 => {
                    let loc = self.locate(key, false)?;
                    return Ok(matches!(
                        loc.outcome,
                        BOutcome::Leaf { ref leaf, .. }
                            if leaf.key == key && leaf.status != NodeStatus::Invalid
                    ));
                }
                _ => {
                    self.obs.incr("lock.spin");
                    self.backoff();
                }
            }
        }
        Err(BaselineError::RetriesExhausted {
            op: "install resolve",
        })
    }

    fn write_leaf_value(
        &mut self,
        node_ptr: RemotePtr,
        offset: u64,
        slot: &Slot,
        leaf: &LeafNode,
        key: &[u8],
        value: &[u8],
    ) -> Result<bool, BaselineError> {
        if leaf.fits_in_place(value.len()) {
            // Lock CAS and payload write travel in one engine call:
            // attribute the pair to LeafWrite wholesale.
            self.obs_phase(Phase::LeafWrite);
            let (idle, locked) = leaf.status_cas_words(NodeStatus::Idle, NodeStatus::Locked);
            let mut new_leaf = LeafNode::new(key.to_vec(), value.to_vec());
            new_leaf.version = leaf.version.wrapping_add(1);
            new_leaf.set_len_units(leaf.len_units());
            Ok(cas_locked_write(
                &mut self.dm,
                slot.addr,
                idle,
                locked,
                vec![(slot.addr, new_leaf.encode())],
            )?)
        } else {
            self.swap_leaf(node_ptr, offset, slot, key, value)
        }
    }

    fn swap_leaf(
        &mut self,
        node_ptr: RemotePtr,
        offset: u64,
        slot: &Slot,
        key: &[u8],
        value: &[u8],
    ) -> Result<bool, BaselineError> {
        self.obs_phase(Phase::LeafWrite);
        let new_ptr = write_new_leaf(&mut self.dm, key, value)?;
        let new_slot = Slot::leaf(slot.key_byte, new_ptr);
        match self.install_word(node_ptr, offset, slot.encode(), new_slot.encode())? {
            Install::Done => {
                // Tombstone the replaced leaf, then retire it: readers
                // still holding its address must see `Invalid` (or the
                // old value) until the grace period expires.
                let bytes = match self.read_leaf(slot.addr) {
                    Ok(old) => {
                        let (cur, inv) = old.status_cas_words(old.status, NodeStatus::Invalid);
                        let _ = self.dm.cas(slot.addr, cur, inv)?;
                        old.len_units().max(1) as u64 * 64
                    }
                    Err(_) => 64,
                };
                let BaselineClient { dm, reclaim, .. } = self;
                reclaim.retire(dm, slot.addr, bytes);
                Ok(true)
            }
            Install::Raced => {
                let _ = self.dm.free(new_ptr);
                Ok(false)
            }
            Install::Ambiguous => {
                // Possibly live in a mid-switch copy, and the baselines
                // have no hash table to re-probe ownership through:
                // abandon the region (counted, bounded leak).
                self.obs.incr("reclaim.ambiguous_abandoned");
                Ok(false)
            }
        }
    }

    fn split_leaf(
        &mut self,
        node_ptr: RemotePtr,
        offset: u64,
        slot: &Slot,
        leaf: &LeafNode,
        key: &[u8],
        value: &[u8],
    ) -> Result<bool, BaselineError> {
        if offset == VALUE_SLOT_OFFSET {
            // A value-slot leaf key equals the node prefix equals the
            // search key; a mismatch means the tree changed — retry.
            return Ok(false);
        }
        self.obs_phase(Phase::LeafWrite);
        let cpl = common_prefix_len(key, &leaf.key);
        let prefix = &key[..cpl];
        let kind = self.meta.config.fresh_node_kind();
        let mut n = InnerNode::new(kind, prefix);
        if leaf.key.len() == cpl {
            n.value_slot = Some(Slot::leaf(0, slot.addr));
        } else {
            n.set_child(Slot::leaf(leaf.key[cpl], slot.addr));
        }
        let leaf_ptr = write_new_leaf(&mut self.dm, key, value)?;
        if key.len() == cpl {
            n.value_slot = Some(Slot::leaf(0, leaf_ptr));
        } else {
            n.set_child(Slot::leaf(key[cpl], leaf_ptr));
        }
        let n_ptr = write_new_inner(&mut self.dm, &n, prefix)?;
        let new_slot = Slot::inner(slot.key_byte, kind, n_ptr);
        match self.install_word(node_ptr, offset, slot.encode(), new_slot.encode())? {
            Install::Done => Ok(true),
            Install::Raced => {
                let _ = self.dm.free(n_ptr);
                let _ = self.dm.free(leaf_ptr);
                Ok(false)
            }
            Install::Ambiguous => {
                self.obs.incr("reclaim.ambiguous_abandoned");
                Ok(false)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn split_path(
        &mut self,
        node_ptr: RemotePtr,
        slot_idx: usize,
        slot: &Slot,
        child: &InnerNode,
        sample: &LeafNode,
        key: &[u8],
        value: &[u8],
    ) -> Result<bool, BaselineError> {
        let cpl = common_prefix_len(key, &sample.key);
        let clen = child.header.prefix_len as usize;
        if cpl >= clen || cpl >= sample.key.len() {
            return Ok(false);
        }
        self.obs_phase(Phase::LeafWrite);
        let prefix = &key[..cpl];
        let kind = self.meta.config.fresh_node_kind();
        let mut n = InnerNode::new(kind, prefix);
        n.set_child(Slot::inner(sample.key[cpl], child.header.kind, slot.addr));
        let leaf_ptr = write_new_leaf(&mut self.dm, key, value)?;
        if key.len() == cpl {
            n.value_slot = Some(Slot::leaf(0, leaf_ptr));
        } else {
            n.set_child(Slot::leaf(key[cpl], leaf_ptr));
        }
        let n_ptr = write_new_inner(&mut self.dm, &n, prefix)?;
        let new_slot = Slot::inner(slot.key_byte, kind, n_ptr);
        match self.install_word(
            node_ptr,
            InnerNode::slot_offset(slot_idx),
            slot.encode(),
            new_slot.encode(),
        )? {
            Install::Done => Ok(true),
            Install::Raced => {
                let _ = self.dm.free(n_ptr);
                let _ = self.dm.free(leaf_ptr);
                Ok(false)
            }
            Install::Ambiguous => {
                self.obs.incr("reclaim.ambiguous_abandoned");
                Ok(false)
            }
        }
    }

    /// The adaptive node-type switch, with the parent slot known directly
    /// from the traversal (no hash table to consult — but also no way to
    /// shortcut it, which is the point of the baseline).
    fn type_switch_insert(
        &mut self,
        loc: &Located,
        key: &[u8],
        value: &[u8],
    ) -> Result<bool, BaselineError> {
        let node = &loc.node;
        let plen = node.header.prefix_len as usize;
        let byte = key[plen];
        if node.grown_kind().is_none() {
            return Ok(false); // stale snapshot of a full Node256
        }
        let idle = node.header.control_with_status(NodeStatus::Idle);
        let locked = node.header.control_with_status(NodeStatus::Locked);
        self.obs_phase(Phase::LockAcquire);
        if self.dm.cas(loc.node_ptr, idle, locked)? != idle {
            self.obs.incr("lock.contended");
            return Ok(false);
        }
        let bytes = self
            .dm
            .read(loc.node_ptr, InnerNode::byte_size(node.header.kind))?;
        let fresh = InnerNode::decode(&bytes)?;
        let unlock = fresh.header.control_with_status(NodeStatus::Idle);
        if fresh.find_child(byte).is_some() {
            self.dm.write_u64(loc.node_ptr, unlock)?;
            return Ok(false);
        }
        if let Some(idx) = fresh.free_slot(byte) {
            self.obs_phase(Phase::LeafWrite);
            let leaf_ptr = write_new_leaf(&mut self.dm, key, value)?;
            self.dm.write_many(vec![
                (
                    loc.node_ptr.checked_add(InnerNode::slot_offset(idx))?,
                    Slot::leaf(byte, leaf_ptr).encode().to_le_bytes().to_vec(),
                ),
                (loc.node_ptr, unlock.to_le_bytes().to_vec()),
            ])?;
            self.invalidate_cached(loc.node_ptr);
            return Ok(true);
        }
        self.obs_phase(Phase::LeafWrite);
        let mut grown = fresh.grow();
        let leaf_ptr = write_new_leaf(&mut self.dm, key, value)?;
        grown.set_child(Slot::leaf(byte, leaf_ptr));
        let grown_ptr = write_new_inner(&mut self.dm, &grown, &key[..plen])?;

        // Swing the pointer to this node: either the parent's child slot
        // or the root word.
        let old_slot = Slot::decode(loc.parent_expected).ok_or(BaselineError::Corrupt {
            what: "parent slot empty",
        })?;
        let new_word = Slot::inner(old_slot.key_byte, grown.header.kind, grown_ptr).encode();
        let swung = match loc.parent_node_ptr {
            None => {
                if self
                    .dm
                    .cas(self.meta.root_word, loc.parent_expected, new_word)?
                    == loc.parent_expected
                {
                    Install::Done
                } else {
                    Install::Raced // the meta word has no switch ambiguity
                }
            }
            Some(pp) => {
                let offset = loc.parent_word_ptr.offset() - pp.offset();
                self.install_word(pp, offset, loc.parent_expected, new_word)?
            }
        };
        match swung {
            Install::Done => {}
            Install::Raced => {
                // Provably never linked: reclaim and retry.
                self.dm.write_u64(loc.node_ptr, unlock)?;
                let _ = self.dm.free(grown_ptr);
                let _ = self.dm.free(leaf_ptr);
                self.root_slot = None;
                return Ok(false);
            }
            Install::Ambiguous => {
                // The grown node may be linked through a copy, and the
                // baselines have no hash table to re-probe ownership
                // through: unlock the original, abandon the grown node
                // and leaf (counted, bounded leak), and let the retry
                // converge on whichever structure won.
                self.dm.write_u64(loc.node_ptr, unlock)?;
                self.obs.incr("reclaim.ambiguous_abandoned");
                self.root_slot = None;
                return Ok(false);
            }
        }
        // Invalidate and retire the original: concurrent traversals may
        // still hold its address, so the region waits out a grace period.
        {
            let BaselineClient { dm, reclaim, .. } = self;
            retire_inner(dm, reclaim, loc.node_ptr, &fresh)?;
        }
        self.invalidate_cached(loc.node_ptr);
        if loc.parent_node_ptr.is_none() {
            self.root_slot = None; // our cached root pointer is stale now
        }
        Ok(true)
    }
}

/// See `sphinx::scan` for the derivation.
fn range_may_intersect(known: &[u8], low: &[u8], high: &[u8]) -> bool {
    if known > high {
        return false;
    }
    if known < low && !low.starts_with(known) {
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use crate::{BaselineConfig, BaselineIndex};
    use dm_sim::{ClusterConfig, DmCluster};

    fn cluster() -> DmCluster {
        DmCluster::new(ClusterConfig {
            num_mns: 3,
            num_cns: 3,
            mn_capacity: 128 << 20,
            ..Default::default()
        })
    }

    fn configs() -> Vec<(&'static str, BaselineConfig)> {
        vec![
            ("art", BaselineConfig::art()),
            ("smart", BaselineConfig::smart(1 << 20)),
        ]
    }

    #[test]
    fn insert_get_roundtrip_both_baselines() {
        for (name, cfg) in configs() {
            let c = cluster();
            let idx = BaselineIndex::create(&c, cfg).unwrap();
            let mut cl = idx.client(0).unwrap();
            cl.insert(b"lyrics", b"v1").unwrap();
            cl.insert(b"lyre", b"v2").unwrap();
            assert_eq!(
                cl.get(b"lyrics").unwrap().as_deref(),
                Some(&b"v1"[..]),
                "{name}"
            );
            assert_eq!(
                cl.get(b"lyre").unwrap().as_deref(),
                Some(&b"v2"[..]),
                "{name}"
            );
            assert_eq!(cl.get(b"lyr").unwrap(), None, "{name}");
        }
    }

    #[test]
    fn update_delete_scan_both_baselines() {
        for (name, cfg) in configs() {
            let c = cluster();
            let idx = BaselineIndex::create(&c, cfg).unwrap();
            let mut cl = idx.client(0).unwrap();
            for w in ["apple", "banana", "cherry", "date"] {
                cl.insert(w.as_bytes(), b"x").unwrap();
            }
            assert!(cl.update(b"banana", b"yellow").unwrap(), "{name}");
            assert!(cl.remove(b"cherry").unwrap(), "{name}");
            let hits = cl.scan(b"a", b"z").unwrap();
            let keys: Vec<&[u8]> = hits.iter().map(|(k, _)| k.as_slice()).collect();
            assert_eq!(
                keys,
                vec![b"apple".as_slice(), b"banana", b"date"],
                "{name}"
            );
            assert_eq!(
                cl.get(b"banana").unwrap().as_deref(),
                Some(&b"yellow"[..]),
                "{name}"
            );
        }
    }

    #[test]
    fn many_keys_with_type_switches_art() {
        let c = cluster();
        let idx = BaselineIndex::create(&c, BaselineConfig::art()).unwrap();
        let mut cl = idx.client(0).unwrap();
        for i in 0..500u32 {
            cl.insert(&i.wrapping_mul(2654435761).to_be_bytes(), &i.to_le_bytes())
                .unwrap();
        }
        for i in 0..500u32 {
            assert_eq!(
                cl.get(&i.wrapping_mul(2654435761).to_be_bytes())
                    .unwrap()
                    .as_deref(),
                Some(&i.to_le_bytes()[..]),
                "key {i}"
            );
        }
    }

    #[test]
    fn smart_prealloc_uses_more_memory_than_art() {
        let keys: Vec<[u8; 8]> = (0..3000u64)
            .map(|i| (i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).to_be_bytes())
            .collect();
        let mut sizes = Vec::new();
        for (_, cfg) in configs() {
            let c = cluster();
            let idx = BaselineIndex::create(&c, cfg).unwrap();
            let mut cl = idx.client(0).unwrap();
            for (i, k) in keys.iter().enumerate() {
                cl.insert(k, &(i as u64).to_le_bytes()).unwrap();
            }
            sizes.push(idx.memory_bytes());
        }
        let (art, smart) = (sizes[0], sizes[1]);
        assert!(
            smart as f64 > art as f64 * 1.5,
            "SMART prealloc should cost much more memory: art={art} smart={smart}"
        );
    }

    #[test]
    fn smart_cache_cuts_round_trips() {
        let c = cluster();
        let idx = BaselineIndex::create(&c, BaselineConfig::smart(4 << 20)).unwrap();
        let mut cl = idx.client(0).unwrap();
        for i in 0..200u32 {
            cl.insert(format!("cachekey{i:04}").as_bytes(), b"v")
                .unwrap();
        }
        // Warm pass.
        for i in 0..200u32 {
            cl.get(format!("cachekey{i:04}").as_bytes()).unwrap();
        }
        let warm_before = cl.net_stats().round_trips;
        for i in 0..200u32 {
            cl.get(format!("cachekey{i:04}").as_bytes()).unwrap();
        }
        let warm = cl.net_stats().round_trips - warm_before;
        // ART pays full traversal every time.
        let c2 = cluster();
        let idx2 = BaselineIndex::create(&c2, BaselineConfig::art()).unwrap();
        let mut cl2 = idx2.client(0).unwrap();
        for i in 0..200u32 {
            cl2.insert(format!("cachekey{i:04}").as_bytes(), b"v")
                .unwrap();
        }
        let before = cl2.net_stats().round_trips;
        for i in 0..200u32 {
            cl2.get(format!("cachekey{i:04}").as_bytes()).unwrap();
        }
        let art_rts = cl2.net_stats().round_trips - before;
        assert!(
            warm < art_rts,
            "cached SMART ({warm} RTs) should beat uncached ART ({art_rts} RTs)"
        );
    }

    #[test]
    fn cross_client_visibility_despite_cache() {
        let c = cluster();
        let idx = BaselineIndex::create(&c, BaselineConfig::smart(1 << 20)).unwrap();
        let mut w = idx.client(0).unwrap();
        let mut r = idx.client(1).unwrap();
        w.insert(b"seen", b"1").unwrap();
        assert_eq!(r.get(b"seen").unwrap().as_deref(), Some(&b"1"[..]));
        // Reader has now cached the path; writer adds a sibling.
        w.insert(b"seen2", b"2").unwrap();
        assert_eq!(
            r.get(b"seen2").unwrap().as_deref(),
            Some(&b"2"[..]),
            "stale cache must not hide new keys"
        );
    }

    #[test]
    fn concurrent_inserts_both_baselines() {
        for (name, cfg) in configs() {
            let c = cluster();
            let idx = BaselineIndex::create(&c, cfg).unwrap();
            std::thread::scope(|s| {
                for t in 0..3u32 {
                    let idx = idx.clone();
                    s.spawn(move || {
                        let mut cl = idx.client(t as u16 % 3).unwrap();
                        for i in 0..150u32 {
                            cl.insert(format!("c{t}-{i:04}").as_bytes(), &i.to_le_bytes())
                                .unwrap();
                        }
                    });
                }
            });
            let mut cl = idx.client(0).unwrap();
            for t in 0..3u32 {
                for i in 0..150u32 {
                    assert_eq!(
                        cl.get(format!("c{t}-{i:04}").as_bytes())
                            .unwrap()
                            .as_deref(),
                        Some(&i.to_le_bytes()[..]),
                        "{name}: lost c{t}-{i}"
                    );
                }
            }
        }
    }
}
