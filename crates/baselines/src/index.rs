//! Index bootstrap and client construction for the baselines.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use art_core::layout::{InnerNode, Slot};
use art_core::NodeKind;
use dm_sim::{ClientStats, DmClient, DmCluster, RemotePtr, RetryPolicy};

use crate::cache::NodeCache;
use crate::error::BaselineError;

/// Configuration selecting which baseline to run.
#[derive(Debug, Clone)]
pub struct BaselineConfig {
    /// Allocate every inner node at Node-256 size (SMART's preallocation;
    /// avoids node relocation at 2.1–3.0× memory cost).
    pub prealloc256: bool,
    /// CN-side node-cache budget in bytes (0 disables caching — the plain
    /// ART baseline).
    pub cache_bytes: usize,
    /// Bytes fetched for a leaf in the first read.
    pub leaf_read_hint: usize,
    /// Whether scans doorbell-batch their node reads. SMART does; the
    /// plain ART port does not — the cause of its 2.3–3.1× YCSB-E gap in
    /// the paper's Fig. 4.
    pub batched_scan: bool,
}

impl BaselineConfig {
    /// The paper's "ART" baseline: no cache, adaptive node sizes, one
    /// round trip per tree level.
    pub fn art() -> Self {
        BaselineConfig {
            prealloc256: false,
            cache_bytes: 0,
            leaf_read_hint: 128,
            batched_scan: false,
        }
    }

    /// The paper's "SMART" baseline with the given CN-side cache budget
    /// (20 MB in Fig. 4; 200 MB for "SMART+C").
    pub fn smart(cache_bytes: usize) -> Self {
        BaselineConfig {
            prealloc256: true,
            cache_bytes,
            leaf_read_hint: 128,
            batched_scan: true,
        }
    }

    pub(crate) fn fresh_node_kind(&self) -> NodeKind {
        if self.prealloc256 {
            NodeKind::Node256
        } else {
            NodeKind::Node4
        }
    }
}

#[derive(Debug)]
pub(crate) struct BaselineMeta {
    pub(crate) root_word: RemotePtr,
    pub(crate) config: BaselineConfig,
    pub(crate) caches: Mutex<HashMap<u16, Arc<Mutex<NodeCache>>>>,
}

/// A baseline range index (plain ART on DM, or SMART) on a [`DmCluster`].
#[derive(Debug, Clone)]
pub struct BaselineIndex {
    cluster: DmCluster,
    meta: Arc<BaselineMeta>,
}

impl BaselineIndex {
    /// Builds the MN-side tree: an empty root node plus the root pointer
    /// word every client bootstraps from.
    ///
    /// # Errors
    ///
    /// Propagates substrate errors.
    pub fn create(cluster: &DmCluster, config: BaselineConfig) -> Result<Self, BaselineError> {
        let mut boot = cluster.client(0);
        let kind = config.fresh_node_kind();
        let root = InnerNode::new(kind, &[]);
        let root_ptr = boot.alloc(cluster.place(0), InnerNode::byte_size(kind))?;
        boot.write(root_ptr, &root.encode())?;
        let root_word = boot.alloc(0, 8)?;
        boot.write_u64(root_word, Slot::inner(0, kind, root_ptr).encode())?;
        Ok(BaselineIndex {
            cluster: cluster.clone(),
            meta: Arc::new(BaselineMeta {
                root_word,
                config,
                caches: Mutex::new(HashMap::new()),
            }),
        })
    }

    /// Creates a worker client on compute node `cn_id`; workers of one CN
    /// share that CN's node cache (if the configuration has one).
    ///
    /// # Errors
    ///
    /// Currently infallible beyond substrate panics; returns `Result` for
    /// symmetry with the Sphinx API.
    ///
    /// # Panics
    ///
    /// Panics if `cn_id` is out of range for the cluster.
    pub fn client(&self, cn_id: u16) -> Result<BaselineClient, BaselineError> {
        let dm = self.cluster.client(cn_id);
        let cache = if self.meta.config.cache_bytes > 0 {
            let mut caches = self.meta.caches.lock();
            Some(
                caches
                    .entry(cn_id)
                    .or_insert_with(|| {
                        Arc::new(Mutex::new(NodeCache::new(self.meta.config.cache_bytes)))
                    })
                    .clone(),
            )
        } else {
            None
        };
        Ok(BaselineClient {
            dm,
            meta: self.meta.clone(),
            cache,
            root_slot: None,
            stats: BaselineStats::default(),
            retry: RetryPolicy::default(),
            obs: obs::Recorder::new(),
        })
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &DmCluster {
        &self.cluster
    }

    /// Total MN-side bytes the index occupies (all allocations on the
    /// cluster belong to it).
    pub fn memory_bytes(&self) -> u64 {
        self.cluster.total_live_bytes()
    }

    pub(crate) fn meta(&self) -> &BaselineMeta {
        &self.meta
    }
}

/// Operation counters for a baseline worker.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BaselineStats {
    /// Point lookups served.
    pub gets: u64,
    /// Inserts served.
    pub inserts: u64,
    /// Updates served.
    pub updates: u64,
    /// Deletes served.
    pub deletes: u64,
    /// Scans served.
    pub scans: u64,
    /// Traversals restarted after seeing stale/invalid state.
    pub retries: u64,
    /// Leaf reads re-issued after a torn (checksum-failing) snapshot.
    pub checksum_retries: u64,
}

/// A per-worker baseline client (owns a virtual clock and its network
/// statistics, like [`sphinx`-clients](https://docs.rs/sphinx)).
#[derive(Debug)]
pub struct BaselineClient {
    pub(crate) dm: DmClient,
    pub(crate) meta: Arc<BaselineMeta>,
    pub(crate) cache: Option<Arc<Mutex<NodeCache>>>,
    pub(crate) root_slot: Option<Slot>,
    pub(crate) stats: BaselineStats,
    /// Shared bounded-retry budget (see [`dm_sim::RetryPolicy`]).
    pub(crate) retry: RetryPolicy,
    /// Per-worker telemetry recorder (spans + phase attribution).
    pub(crate) obs: obs::Recorder,
}

impl BaselineClient {
    /// Operation counters.
    pub fn op_stats(&self) -> BaselineStats {
        self.stats
    }

    /// This worker's telemetry: phase-attributed spans plus the baseline
    /// domain counters (`baseline.*`, `cache.*`, `lock.*`).
    pub fn telemetry(&self) -> obs::Registry {
        let mut reg = self.obs.registry();
        reg.add("baseline.retries", self.stats.retries);
        reg.add("baseline.checksum_retries", self.stats.checksum_retries);
        reg
    }

    #[inline]
    pub(crate) fn obs_begin(&mut self, kind: obs::OpKind) {
        self.obs.begin(kind, self.dm.stats(), self.dm.clock_ns());
    }

    #[inline]
    pub(crate) fn obs_phase(&mut self, phase: obs::Phase) {
        self.obs.phase(phase, self.dm.stats(), self.dm.clock_ns());
    }

    #[inline]
    pub(crate) fn obs_end(&mut self) {
        self.obs.end(self.dm.stats(), self.dm.clock_ns());
    }

    /// Network-level statistics.
    pub fn net_stats(&self) -> ClientStats {
        self.dm.stats()
    }

    /// This worker's virtual clock in nanoseconds.
    pub fn clock_ns(&self) -> u64 {
        self.dm.clock_ns()
    }

    /// Resets the virtual clock (benchmark phase barrier).
    pub fn set_clock_ns(&mut self, ns: u64) {
        self.dm.set_clock_ns(ns);
    }

    /// Attaches a deterministic-schedule participant handle to this
    /// worker's transport (see [`dm_sim::Schedule`]).
    pub fn attach_schedule(&mut self, handle: dm_sim::ScheduleHandle) {
        self.dm.attach_schedule(handle);
    }

    /// Consumes one scheduling step and returns its number (a virtual
    /// timestamp); `None` when no schedule is attached.
    pub fn schedule_tick(&mut self) -> Option<u64> {
        self.dm.schedule_tick()
    }
}
