//! Index bootstrap and client construction for the baselines.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use art_core::layout::{InnerNode, Slot};
use art_core::NodeKind;
use dm_sim::{ClientStats, DmClient, DmCluster, RemotePtr, RetryPolicy};

use crate::cache::NodeCache;
use crate::error::BaselineError;

/// Configuration selecting which baseline to run.
#[derive(Debug, Clone)]
pub struct BaselineConfig {
    /// Allocate every inner node at Node-256 size (SMART's preallocation;
    /// avoids node relocation at 2.1–3.0× memory cost).
    pub prealloc256: bool,
    /// CN-side node-cache budget in bytes (0 disables caching — the plain
    /// ART baseline).
    pub cache_bytes: usize,
    /// Bytes fetched for a leaf in the first read.
    pub leaf_read_hint: usize,
    /// Whether scans doorbell-batch their node reads. SMART does; the
    /// plain ART port does not — the cause of its 2.3–3.1× YCSB-E gap in
    /// the paper's Fig. 4.
    pub batched_scan: bool,
    /// Epoch-based reclamation of unlinked nodes and leaves (shared with
    /// Sphinx via the `reclaim` crate, so memory comparisons measure the
    /// index designs, not who leaks more).
    pub reclaim: reclaim::ReclaimConfig,
}

impl BaselineConfig {
    /// The paper's "ART" baseline: no cache, adaptive node sizes, one
    /// round trip per tree level.
    pub fn art() -> Self {
        BaselineConfig {
            prealloc256: false,
            cache_bytes: 0,
            leaf_read_hint: 128,
            batched_scan: false,
            reclaim: reclaim::ReclaimConfig::default(),
        }
    }

    /// The paper's "SMART" baseline with the given CN-side cache budget
    /// (20 MB in Fig. 4; 200 MB for "SMART+C").
    pub fn smart(cache_bytes: usize) -> Self {
        BaselineConfig {
            prealloc256: true,
            cache_bytes,
            leaf_read_hint: 128,
            batched_scan: true,
            reclaim: reclaim::ReclaimConfig::default(),
        }
    }

    pub(crate) fn fresh_node_kind(&self) -> NodeKind {
        if self.prealloc256 {
            NodeKind::Node256
        } else {
            NodeKind::Node4
        }
    }
}

#[derive(Debug)]
pub(crate) struct BaselineMeta {
    pub(crate) root_word: RemotePtr,
    pub(crate) config: BaselineConfig,
    pub(crate) caches: Mutex<HashMap<u16, Arc<Mutex<NodeCache>>>>,
    /// The index-wide epoch-reclamation domain every worker registers
    /// with (the MN-resident epoch word and pin-slot array).
    pub(crate) reclaim_domain: reclaim::ReclaimDomain,
}

/// A baseline range index (plain ART on DM, or SMART) on a [`DmCluster`].
#[derive(Debug, Clone)]
pub struct BaselineIndex {
    cluster: DmCluster,
    meta: Arc<BaselineMeta>,
}

impl BaselineIndex {
    /// Builds the MN-side tree: an empty root node plus the root pointer
    /// word every client bootstraps from.
    ///
    /// # Errors
    ///
    /// Propagates substrate errors.
    pub fn create(cluster: &DmCluster, config: BaselineConfig) -> Result<Self, BaselineError> {
        let mut boot = cluster.client(0);
        let kind = config.fresh_node_kind();
        let root = InnerNode::new(kind, &[]);
        let root_ptr = boot.alloc(cluster.place(0), InnerNode::byte_size(kind))?;
        boot.write(root_ptr, &root.encode())?;
        let root_word = boot.alloc(0, 8)?;
        boot.write_u64(root_word, Slot::inner(0, kind, root_ptr).encode())?;
        let reclaim_domain = reclaim::ReclaimDomain::create(&mut boot, 0, config.reclaim)?;
        Ok(BaselineIndex {
            cluster: cluster.clone(),
            meta: Arc::new(BaselineMeta {
                root_word,
                config,
                caches: Mutex::new(HashMap::new()),
                reclaim_domain,
            }),
        })
    }

    /// Creates a worker client on compute node `cn_id`; workers of one CN
    /// share that CN's node cache (if the configuration has one).
    ///
    /// # Errors
    ///
    /// Currently infallible beyond substrate panics; returns `Result` for
    /// symmetry with the Sphinx API.
    ///
    /// # Panics
    ///
    /// Panics if `cn_id` is out of range for the cluster.
    pub fn client(&self, cn_id: u16) -> Result<BaselineClient, BaselineError> {
        let mut dm = self.cluster.client(cn_id);
        let cache = if self.meta.config.cache_bytes > 0 {
            let mut caches = self.meta.caches.lock();
            Some(
                caches
                    .entry(cn_id)
                    .or_insert_with(|| {
                        Arc::new(Mutex::new(NodeCache::new(self.meta.config.cache_bytes)))
                    })
                    .clone(),
            )
        } else {
            None
        };
        let reclaim = self.meta.reclaim_domain.register(&mut dm)?;
        Ok(BaselineClient {
            dm,
            meta: self.meta.clone(),
            cache,
            root_slot: None,
            stats: BaselineStats::default(),
            retry: RetryPolicy::default(),
            obs: obs::Recorder::new(),
            reclaim,
        })
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &DmCluster {
        &self.cluster
    }

    /// Total MN-side bytes the index occupies (all allocations on the
    /// cluster belong to it).
    pub fn memory_bytes(&self) -> u64 {
        self.cluster.total_live_bytes()
    }

    pub(crate) fn meta(&self) -> &BaselineMeta {
        &self.meta
    }
}

/// Operation counters for a baseline worker.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BaselineStats {
    /// Point lookups served.
    pub gets: u64,
    /// Inserts served.
    pub inserts: u64,
    /// Updates served.
    pub updates: u64,
    /// Deletes served.
    pub deletes: u64,
    /// Scans served.
    pub scans: u64,
    /// Traversals restarted after seeing stale/invalid state.
    pub retries: u64,
    /// Leaf reads re-issued after a torn (checksum-failing) snapshot.
    pub checksum_retries: u64,
}

/// A per-worker baseline client (owns a virtual clock and its network
/// statistics, like [`sphinx`-clients](https://docs.rs/sphinx)).
#[derive(Debug)]
pub struct BaselineClient {
    pub(crate) dm: DmClient,
    pub(crate) meta: Arc<BaselineMeta>,
    pub(crate) cache: Option<Arc<Mutex<NodeCache>>>,
    pub(crate) root_slot: Option<Slot>,
    pub(crate) stats: BaselineStats,
    /// Shared bounded-retry budget (see [`dm_sim::RetryPolicy`]).
    pub(crate) retry: RetryPolicy,
    /// Per-worker telemetry recorder (spans + phase attribution).
    pub(crate) obs: obs::Recorder,
    /// This worker's epoch-reclamation handle (pin slot + limbo list).
    pub(crate) reclaim: reclaim::ReclaimHandle,
}

impl BaselineClient {
    /// Operation counters.
    pub fn op_stats(&self) -> BaselineStats {
        self.stats
    }

    /// This worker's telemetry: phase-attributed spans plus the baseline
    /// domain counters (`baseline.*`, `cache.*`, `lock.*`).
    pub fn telemetry(&self) -> obs::Registry {
        let mut reg = self.obs.registry();
        reg.add("baseline.retries", self.stats.retries);
        reg.add("baseline.checksum_retries", self.stats.checksum_retries);
        let rs = self.reclaim.stats();
        reg.add("reclaim.retired_count", rs.retired_count);
        reg.add("reclaim.retired_bytes", rs.retired_bytes);
        reg.add("reclaim.freed_count", rs.freed_count);
        reg.add("reclaim.freed_bytes", rs.freed_bytes);
        reg.add("reclaim.limbo_depth", self.reclaim.limbo_len() as u64);
        reg.add("reclaim.limbo_bytes", self.reclaim.limbo_bytes());
        reg.add("reclaim.scans", rs.scans);
        reg.add("reclaim.epoch_advances", rs.epoch_advances);
        reg.add("reclaim.errors", rs.errors);
        reg.add("reclaim.epoch_lag_le_1", rs.lag_le_1);
        reg.add("reclaim.epoch_lag_le_2", rs.lag_le_2);
        reg.add("reclaim.epoch_lag_le_4", rs.lag_le_4);
        reg.add("reclaim.epoch_lag_gt_4", rs.lag_gt_4);
        reg
    }

    /// Reclamation statistics of this worker's epoch handle.
    pub fn reclaim_stats(&self) -> reclaim::ReclaimStats {
        self.reclaim.stats()
    }

    /// Entries waiting in this worker's limbo list.
    pub fn reclaim_limbo_len(&self) -> usize {
        self.reclaim.limbo_len()
    }

    /// Forces one epoch scan (advance + free whatever is past grace).
    pub fn reclaim_scan(&mut self) {
        let BaselineClient { dm, reclaim, .. } = self;
        reclaim.scan(dm);
    }

    /// Scans until this worker's limbo list is empty or `max_rounds`
    /// scans have run; returns whether the list drained.
    pub fn reclaim_quiesce(&mut self, max_rounds: usize) -> bool {
        let BaselineClient { dm, reclaim, .. } = self;
        reclaim.quiesce(dm, max_rounds)
    }

    /// Removes this worker from epoch gating (call before dropping an
    /// idle client so it cannot stall everyone else's reclamation).
    pub fn reclaim_deregister(&mut self) {
        let BaselineClient { dm, reclaim, .. } = self;
        reclaim.deregister(dm);
    }

    #[inline]
    pub(crate) fn obs_begin(&mut self, kind: obs::OpKind) {
        self.reclaim.pin();
        self.obs.begin(kind, self.dm.stats(), self.dm.clock_ns());
    }

    #[inline]
    pub(crate) fn obs_phase(&mut self, phase: obs::Phase) {
        self.obs.phase(phase, self.dm.stats(), self.dm.clock_ns());
    }

    #[inline]
    pub(crate) fn obs_end(&mut self) {
        self.obs.end(self.dm.stats(), self.dm.clock_ns());
    }

    /// Operation epilogue: unpin from the epoch (running the amortized
    /// reclamation scan when due, attributed to the maintenance phase)
    /// and close the telemetry span.
    pub(crate) fn op_exit(&mut self) {
        if self.reclaim.scan_due() {
            self.obs_phase(obs::Phase::Maintenance);
        }
        {
            let BaselineClient { dm, reclaim, .. } = self;
            reclaim.unpin(dm);
        }
        self.obs_end();
    }

    /// Network-level statistics.
    pub fn net_stats(&self) -> ClientStats {
        self.dm.stats()
    }

    /// This worker's virtual clock in nanoseconds.
    pub fn clock_ns(&self) -> u64 {
        self.dm.clock_ns()
    }

    /// Resets the virtual clock (benchmark phase barrier).
    pub fn set_clock_ns(&mut self, ns: u64) {
        self.dm.set_clock_ns(ns);
    }

    /// Attaches a deterministic-schedule participant handle to this
    /// worker's transport (see [`dm_sim::Schedule`]).
    pub fn attach_schedule(&mut self, handle: dm_sim::ScheduleHandle) {
        self.dm.attach_schedule(handle);
    }

    /// Consumes one scheduling step and returns its number (a virtual
    /// timestamp); `None` when no schedule is attached.
    pub fn schedule_tick(&mut self) -> Option<u64> {
        self.dm.schedule_tick()
    }
}
