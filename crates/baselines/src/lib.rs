//! # baselines — the comparison indexes from the Sphinx paper (§V-A)
//!
//! * **ART** ([`BaselineConfig::art`]): the original adaptive radix tree
//!   ported to disaggregated memory. Every index operation walks the tree
//!   from the root, costing one network round trip per level — the
//!   behaviour whose cost Sphinx's Inner Node Hash Table eliminates.
//! * **SMART** ([`BaselineConfig::smart`]): the OSDI'23 state of the art.
//!   Two distinguishing features are modeled:
//!   1. a CN-side **node cache** with a byte budget (20 MB for "SMART",
//!      200 MB for "SMART+C" in the paper) holding recently read inner
//!      nodes, so the top of the tree is traversed locally;
//!   2. **Node-256 preallocation**: every inner node is allocated at
//!      Node-256 size so it never relocates on growth, which sidesteps
//!      cache-coherence problems at the price of 2.1–3.0× MN-side memory
//!      (the paper's Fig. 6). Stale cached nodes are healed by re-reading
//!      remotely whenever a cached traversal produces a suspicious
//!      outcome — our stand-in for SMART's reverse-check mechanism.
//!
//! Both share the node formats of [`art_core::layout`] and run on the
//! [`dm_sim`] substrate, so their round-trip/bandwidth costs are directly
//! comparable with Sphinx's.
//!
//! ## Example
//!
//! ```
//! use dm_sim::{ClusterConfig, DmCluster};
//! use baselines::{BaselineConfig, BaselineIndex};
//!
//! # fn main() -> Result<(), baselines::BaselineError> {
//! let cluster = DmCluster::new(ClusterConfig::default());
//! let index = BaselineIndex::create(&cluster, BaselineConfig::art())?;
//! let mut client = index.client(0)?;
//! client.insert(b"key", b"value")?;
//! assert_eq!(client.get(b"key")?.as_deref(), Some(&b"value"[..]));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod error;
mod index;
mod ops;
mod verify;

pub use cache::NodeCache;
pub use error::BaselineError;
pub use index::{BaselineClient, BaselineConfig, BaselineIndex, BaselineStats};
pub use verify::BaselineIntegrityReport;
