//! Error type for the baseline indexes.

use std::error::Error;
use std::fmt;

use art_core::layout::LayoutError;
use dm_sim::DmError;

/// Errors returned by the baseline index operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BaselineError {
    /// Substrate error.
    Dm(DmError),
    /// Node decode failure that survived retries.
    Layout(LayoutError),
    /// The key exceeds [`art_core::key::MAX_KEY_LEN`].
    KeyTooLong {
        /// Offending length.
        len: usize,
    },
    /// An operation exhausted its retry budget.
    RetriesExhausted {
        /// Which operation gave up.
        op: &'static str,
    },
    /// An on-MN invariant was violated.
    Corrupt {
        /// Description.
        what: &'static str,
    },
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::Dm(e) => write!(f, "substrate error: {e}"),
            BaselineError::Layout(e) => write!(f, "node decode error: {e}"),
            BaselineError::KeyTooLong { len } => {
                write!(f, "key of {len} bytes exceeds the maximum")
            }
            BaselineError::RetriesExhausted { op } => {
                write!(f, "{op} exhausted its retry budget")
            }
            BaselineError::Corrupt { what } => write!(f, "corrupt index structure: {what}"),
        }
    }
}

impl Error for BaselineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BaselineError::Dm(e) => Some(e),
            BaselineError::Layout(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DmError> for BaselineError {
    fn from(e: DmError) -> Self {
        BaselineError::Dm(e)
    }
}

impl From<LayoutError> for BaselineError {
    fn from(e: LayoutError) -> Self {
        BaselineError::Layout(e)
    }
}

impl From<node_engine::EngineError> for BaselineError {
    fn from(e: node_engine::EngineError) -> Self {
        match e {
            node_engine::EngineError::Dm(e) => BaselineError::Dm(e),
            node_engine::EngineError::Layout(e) => BaselineError::Layout(e),
            node_engine::EngineError::RetriesExhausted { op } => {
                BaselineError::RetriesExhausted { op }
            }
            _ => BaselineError::Corrupt {
                what: "unknown engine error",
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_traits() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BaselineError>();
        assert_eq!(
            BaselineError::RetriesExhausted { op: "get" }.to_string(),
            "get exhausted its retry budget"
        );
    }
}
