//! Offline integrity verification for the baseline trees (the same audit
//! `sphinx::verify` performs, minus the hash-table cross-checks the
//! baselines don't have).

use art_core::hash::prefix_hash42;
use art_core::layout::{InnerNode, LeafNode, NodeStatus, Slot};

use crate::error::BaselineError;
use crate::index::BaselineIndex;

/// Outcome of [`BaselineIndex::verify`].
#[derive(Debug, Clone, Default)]
pub struct BaselineIntegrityReport {
    /// Inner nodes visited.
    pub inner_nodes: usize,
    /// Live leaves visited.
    pub leaves: usize,
    /// Deepest prefix length observed.
    pub max_prefix_len: usize,
    /// Violations found.
    pub problems: Vec<String>,
}

impl BaselineIntegrityReport {
    /// Whether the tree passed every check.
    pub fn is_clean(&self) -> bool {
        self.problems.is_empty()
    }
}

impl BaselineIndex {
    /// Audits the whole tree (run only while quiescent): header sanity,
    /// prefix-hash consistency (reconstructed from sampled leaves),
    /// dispatch-byte uniqueness, leaf checksums and prefix membership.
    ///
    /// # Errors
    ///
    /// Propagates substrate errors; violations are reported in the result.
    pub fn verify(&self) -> Result<BaselineIntegrityReport, BaselineError> {
        let mut client = self.client(0)?;
        let mut report = BaselineIntegrityReport::default();
        let root = {
            // Root slot from the meta word, bypassing caches.
            let word = client.dm.read_u64(self.meta().root_word)?;
            match Slot::decode(word) {
                Some(s) => s,
                None => {
                    report.problems.push("null root slot".into());
                    return Ok(report);
                }
            }
        };

        let mut queue = vec![(root.addr, root.child_kind, 0usize)];
        while let Some((ptr, kind, parent_len)) = queue.pop() {
            let bytes = client.dm.read(ptr, InnerNode::byte_size(kind))?;
            let node = match InnerNode::decode(&bytes) {
                Ok(n) => n,
                Err(e) => {
                    report
                        .problems
                        .push(format!("node {ptr}: undecodable: {e}"));
                    continue;
                }
            };
            report.inner_nodes += 1;
            let plen = node.header.prefix_len as usize;
            report.max_prefix_len = report.max_prefix_len.max(plen);
            if node.header.status != NodeStatus::Idle {
                report.problems.push(format!(
                    "node {ptr}: status {:?} on quiescent tree",
                    node.header.status
                ));
            }
            if node.header.kind != kind {
                report.problems.push(format!(
                    "node {ptr}: kind {:?} != pointing slot {kind:?}",
                    node.header.kind
                ));
                continue;
            }
            if plen < parent_len || (plen == parent_len && parent_len != 0) {
                report.problems.push(format!(
                    "node {ptr}: prefix length {plen} does not extend parent ({parent_len})"
                ));
            }
            // Reconstruct the prefix from a leaf; verify the stored hash.
            let prefix = match sample_key(&mut client, &node)? {
                Some(key) if key.len() >= plen => key[..plen].to_vec(),
                Some(_) => {
                    report
                        .problems
                        .push(format!("node {ptr}: sampled key shorter than prefix"));
                    continue;
                }
                None if plen == 0 => Vec::new(),
                None => {
                    report.problems.push(format!("node {ptr}: empty subtree"));
                    continue;
                }
            };
            if node.header.prefix_hash42 != prefix_hash42(&prefix) {
                report
                    .problems
                    .push(format!("node {ptr}: full-prefix hash mismatch"));
            }
            let mut seen = std::collections::HashSet::new();
            if let Some(slot) = node.value_slot {
                check_leaf(&mut client, &slot, &prefix, None, &mut report)?;
            }
            for slot in node.slots.iter().flatten() {
                if !seen.insert(slot.key_byte) {
                    report.problems.push(format!(
                        "node {ptr}: duplicate dispatch byte {:#x}",
                        slot.key_byte
                    ));
                }
                if slot.is_leaf {
                    check_leaf(&mut client, slot, &prefix, Some(slot.key_byte), &mut report)?;
                } else {
                    queue.push((slot.addr, slot.child_kind, plen));
                }
            }
        }
        Ok(report)
    }
}

fn sample_key(
    client: &mut crate::index::BaselineClient,
    node: &InnerNode,
) -> Result<Option<Vec<u8>>, BaselineError> {
    let mut current = node.clone();
    for _ in 0..64 {
        let slot = match current
            .value_slot
            .or_else(|| current.slots.iter().flatten().next().copied())
        {
            Some(s) => s,
            None => return Ok(None),
        };
        if slot.is_leaf {
            let bytes = client.dm.read(slot.addr, 128)?;
            return Ok(LeafNode::decode(&bytes).ok().map(|l| l.key));
        }
        let bytes = client
            .dm
            .read(slot.addr, InnerNode::byte_size(slot.child_kind))?;
        match InnerNode::decode(&bytes) {
            Ok(n) => current = n,
            Err(_) => return Ok(None),
        }
    }
    Ok(None)
}

fn check_leaf(
    client: &mut crate::index::BaselineClient,
    slot: &Slot,
    prefix: &[u8],
    dispatch: Option<u8>,
    report: &mut BaselineIntegrityReport,
) -> Result<(), BaselineError> {
    let mut len = 128usize;
    let leaf = loop {
        let bytes = client.dm.read(slot.addr, len)?;
        let units =
            ((u64::from_le_bytes(bytes[0..8].try_into().expect("8 bytes")) >> 8) & 0xFF) as usize;
        if units.max(1) * 64 > len {
            len = units * 64;
            continue;
        }
        match LeafNode::decode(&bytes) {
            Ok(l) => break l,
            Err(e) => {
                report
                    .problems
                    .push(format!("leaf {}: undecodable: {e}", slot.addr));
                return Ok(());
            }
        }
    };
    if leaf.status == NodeStatus::Invalid {
        return Ok(());
    }
    report.leaves += 1;
    if !leaf.key.starts_with(prefix) {
        report.problems.push(format!(
            "leaf {}: key does not carry parent prefix",
            slot.addr
        ));
    }
    if let Some(byte) = dispatch {
        if leaf.key.get(prefix.len()) != Some(&byte) {
            report
                .problems
                .push(format!("leaf {}: dispatch byte mismatch", slot.addr));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::{BaselineConfig, BaselineIndex};
    use dm_sim::{ClusterConfig, DmCluster};

    #[test]
    fn both_baselines_verify_clean_after_churn() {
        for cfg in [BaselineConfig::art(), BaselineConfig::smart(1 << 20)] {
            let cluster = DmCluster::new(ClusterConfig {
                mn_capacity: 128 << 20,
                ..Default::default()
            });
            let index = BaselineIndex::create(&cluster, cfg).unwrap();
            let mut client = index.client(0).unwrap();
            for i in 0..1_500u64 {
                let key = format!("audit-{:05}", i * 37 % 3000);
                client.insert(key.as_bytes(), &i.to_le_bytes()).unwrap();
            }
            for i in (0..1_500u64).step_by(7) {
                let key = format!("audit-{:05}", i * 37 % 3000);
                let _ = client.remove(key.as_bytes()).unwrap();
            }
            let report = index.verify().unwrap();
            assert!(report.is_clean(), "{:?}", report.problems);
            assert!(report.inner_nodes > 5);
            assert!(report.leaves > 300);
        }
    }
}
