//! Key spaces: the paper's `u64` and `email` datasets as deterministic
//! functions from item index to key bytes.

/// Value size used throughout the paper's evaluation (§V-A).
pub const VALUE_LEN: usize = 64;

fn mix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    x ^ (x >> 33)
}

const FIRST_NAMES: &[&str] = &[
    "li",
    "bo",
    "al",
    "ed",
    "jo",
    "amy",
    "ann",
    "ben",
    "dan",
    "eva",
    "ian",
    "joe",
    "kim",
    "lee",
    "max",
    "mia",
    "sam",
    "tom",
    "zoe",
    "alex",
    "anna",
    "carl",
    "dave",
    "emma",
    "fred",
    "gary",
    "hugo",
    "ivan",
    "jack",
    "jane",
    "kate",
    "lily",
    "mark",
    "nina",
    "olga",
    "paul",
    "rosa",
    "sara",
    "tina",
    "vera",
    "wang",
    "yang",
    "zhao",
    "chen",
    "aaron",
    "bella",
    "chris",
    "diana",
    "elena",
    "frank",
    "grace",
    "henry",
    "irene",
    "james",
    "karen",
    "laura",
    "maria",
    "nancy",
    "oscar",
    "peter",
    "quinn",
    "ralph",
    "susan",
    "tanya",
    "ursula",
    "victor",
    "wendy",
    "xavier",
    "yvonne",
    "zachary",
    "jingxiang",
    "shengan",
    "bowen",
    "hankun",
    "linpeng",
];

const DOMAINS: &[&str] = &[
    "qq.com",
    "gm.com",
    "163.com",
    "aol.com",
    "mail.ru",
    "gmx.de",
    "yahoo.com",
    "gmail.com",
    "proton.me",
    "sjtu.edu.cn",
    "outlook.com",
    "hotmail.com",
    "example.org",
    "fastmail.fm",
];

fn base36(mut v: u64, width: usize) -> String {
    const DIGITS: &[u8] = b"0123456789abcdefghijklmnopqrstuvwxyz";
    let mut out = vec![b'0'; width];
    for slot in out.iter_mut().rev() {
        *slot = DIGITS[(v % 36) as usize];
        v /= 36;
    }
    debug_assert_eq!(v, 0, "index exceeds base36 width {width}");
    String::from_utf8(out).expect("ascii")
}

/// Which dataset keys are drawn from.
///
/// A key space is a *pure function* from item index to key bytes: no
/// materialized key array is needed, inserts simply use fresh indexes, and
/// every worker sees the same mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeySpace {
    /// 8-byte big-endian integers, uniformly spread over the u64 space
    /// (via a bijective mix of the index, so keys are unique).
    U64,
    /// Synthetic email addresses, 2–32 bytes, mean ≈ 19 bytes. Unique per
    /// index (the local part embeds a base-36 rendering of the index).
    Email,
}

impl KeySpace {
    /// Materializes the key for item `index`.
    pub fn key(&self, index: u64) -> Vec<u8> {
        match self {
            KeySpace::U64 => mix64(index).to_be_bytes().to_vec(),
            KeySpace::Email => {
                let h = mix64(index ^ 0xE4_1A11); // independent of the u64 keys
                let first = FIRST_NAMES[(h % FIRST_NAMES.len() as u64) as usize];
                let domain = DOMAINS[((h >> 8) % DOMAINS.len() as u64) as usize];
                let tag = base36(index, 6);
                let style = (h >> 16) % 4;
                let s = match style {
                    0 => format!("{tag}@{domain}"),
                    1 => format!("{first}.{tag}@{domain}"),
                    2 => format!("{first}{tag}@{domain}"),
                    _ => {
                        let second = FIRST_NAMES[((h >> 24) % FIRST_NAMES.len() as u64) as usize];
                        format!("{first}.{second}.{tag}@{domain}")
                    }
                };
                let mut bytes = s.into_bytes();
                bytes.truncate(32);
                bytes
            }
        }
    }

    /// Short human-readable dataset name (as used in the paper's figures).
    pub fn name(&self) -> &'static str {
        match self {
            KeySpace::U64 => "u64",
            KeySpace::Email => "email",
        }
    }
}

/// Deterministic 64-byte value for item `index` at update `version`
/// (lets tests verify read-your-writes without storing expected values).
pub fn value_for(index: u64, version: u32) -> Vec<u8> {
    let seed = mix64(index ^ ((version as u64) << 40));
    let mut out = Vec::with_capacity(VALUE_LEN);
    let mut x = seed;
    while out.len() < VALUE_LEN {
        out.extend_from_slice(&x.to_le_bytes());
        x = mix64(x);
    }
    out.truncate(VALUE_LEN);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn u64_keys_unique_and_fixed_width() {
        let ks = KeySpace::U64;
        let mut seen = HashSet::new();
        for i in 0..100_000u64 {
            let k = ks.key(i);
            assert_eq!(k.len(), 8);
            assert!(seen.insert(k), "duplicate at {i}");
        }
    }

    #[test]
    fn email_keys_unique() {
        let ks = KeySpace::Email;
        let mut seen = HashSet::new();
        for i in 0..100_000u64 {
            assert!(seen.insert(ks.key(i)), "duplicate at {i}");
        }
    }

    #[test]
    fn email_length_statistics_match_paper() {
        // Paper §V-A: sizes 2–32 bytes, average 18.93 bytes.
        let ks = KeySpace::Email;
        let n = 100_000u64;
        let lens: Vec<usize> = (0..n).map(|i| ks.key(i).len()).collect();
        let min = *lens.iter().min().unwrap();
        let max = *lens.iter().max().unwrap();
        let avg = lens.iter().sum::<usize>() as f64 / n as f64;
        assert!(min >= 2, "min {min}");
        assert!(max <= 32, "max {max}");
        assert!((17.0..=21.0).contains(&avg), "avg {avg} outside 17–21");
    }

    #[test]
    fn email_keys_are_ascii_addresses() {
        let ks = KeySpace::Email;
        for i in (0..50_000u64).step_by(997) {
            let k = ks.key(i);
            let s = std::str::from_utf8(&k).expect("ascii email");
            assert!(s.contains('@') || s.len() == 32, "malformed: {s}");
        }
    }

    #[test]
    fn keys_are_deterministic() {
        for ks in [KeySpace::U64, KeySpace::Email] {
            assert_eq!(ks.key(12345), ks.key(12345));
        }
    }

    #[test]
    fn values_depend_on_index_and_version() {
        assert_eq!(value_for(1, 0).len(), VALUE_LEN);
        assert_ne!(value_for(1, 0), value_for(2, 0));
        assert_ne!(value_for(1, 0), value_for(1, 1));
        assert_eq!(value_for(7, 3), value_for(7, 3));
    }

    #[test]
    fn base36_is_fixed_width_and_unique() {
        let mut seen = HashSet::new();
        for i in 0..10_000u64 {
            let s = base36(i, 6);
            assert_eq!(s.len(), 6);
            assert!(seen.insert(s));
        }
    }
}
