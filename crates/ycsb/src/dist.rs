//! Request distributions: zipfian (YCSB flavour), uniform, latest.

use rand::rngs::SmallRng;
use rand::Rng;

fn mix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    x ^ (x >> 33)
}

/// The YCSB zipfian generator (Gray et al.'s algorithm), default skew
/// θ = 0.99.
///
/// By default items are *scrambled*: rank `r` maps to item
/// `mix64(r) % n`, so popularity is decorrelated from key order — the
/// behaviour of YCSB's `ScrambledZipfianGenerator`, which the paper's
/// zipfian-0.99 workloads use.
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zeta_n: f64,
    eta: f64,
    scrambled: bool,
}

impl Zipfian {
    /// Creates a zipfian distribution over `[0, n)` with the YCSB default
    /// skew of 0.99, scrambled.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: u64) -> Self {
        Self::with_theta(n, 0.99, true)
    }

    /// Creates a zipfian distribution with explicit skew `theta` in
    /// `(0, 1)` and scrambling choice.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is outside `(0, 1)`.
    pub fn with_theta(n: u64, theta: f64, scrambled: bool) -> Self {
        assert!(n > 0, "zipfian needs a non-empty item space");
        assert!(theta > 0.0 && theta < 1.0, "theta must be in (0, 1)");
        let zeta_n = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zeta_n);
        Zipfian {
            n,
            theta,
            alpha,
            zeta_n,
            eta,
            scrambled,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct summation for small n; Euler–Maclaurin tail for large n
        // keeps construction O(1e6) regardless of item count.
        const DIRECT: u64 = 1_000_000;
        let direct_n = n.min(DIRECT);
        let mut sum = 0.0;
        for i in 1..=direct_n {
            sum += 1.0 / (i as f64).powf(theta);
        }
        if n > DIRECT {
            // integral approximation of the remaining tail
            let a = DIRECT as f64;
            let b = n as f64;
            sum += (b.powf(1.0 - theta) - a.powf(1.0 - theta)) / (1.0 - theta);
        }
        sum
    }

    /// Number of items.
    pub fn item_count(&self) -> u64 {
        self.n
    }

    /// Draws the next item index in `[0, n)`.
    pub fn sample(&self, rng: &mut SmallRng) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zeta_n;
        let rank = if uz < 1.0 {
            0
        } else if uz < 1.0 + 0.5f64.powf(self.theta) {
            1
        } else {
            ((self.n as f64) * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64
        };
        let rank = rank.min(self.n - 1);
        if self.scrambled {
            // xor a constant first: mix64(0) == 0 would otherwise pin the
            // hottest rank to item 0.
            mix64(rank ^ 0x9E37_79B9_7F4A_7C15) % self.n
        } else {
            rank
        }
    }
}

/// A request distribution over item indexes `[0, n)`.
#[derive(Debug, Clone)]
pub enum Distribution {
    /// Every item equally likely.
    Uniform,
    /// Zipfian skew (YCSB default 0.99, scrambled).
    Zipfian(Zipfian),
    /// Most recently inserted items most likely (YCSB "latest"): rank `r`
    /// under an (unscrambled) zipfian maps to item `n-1-r`.
    Latest(Zipfian),
}

impl Distribution {
    /// The standard zipfian-0.99 over `[0, n)`.
    pub fn zipfian(n: u64) -> Self {
        Distribution::Zipfian(Zipfian::new(n))
    }

    /// The YCSB "latest" distribution over `[0, n)`.
    pub fn latest(n: u64) -> Self {
        Distribution::Latest(Zipfian::with_theta(n, 0.99, false))
    }

    /// Draws an item index in `[0, n)`; `n` is the *current* item count
    /// (grows as the workload inserts, which "latest" must track).
    pub fn sample(&self, rng: &mut SmallRng, n: u64) -> u64 {
        debug_assert!(n > 0);
        match self {
            Distribution::Uniform => rng.gen_range(0..n),
            Distribution::Zipfian(z) => z.sample(rng) % n,
            Distribution::Latest(z) => {
                let rank = z.sample(rng).min(n - 1);
                n - 1 - rank
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn histogram(dist: &Distribution, n: u64, samples: usize) -> Vec<u64> {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut h = vec![0u64; n as usize];
        for _ in 0..samples {
            h[dist.sample(&mut rng, n) as usize] += 1;
        }
        h
    }

    #[test]
    fn zipfian_is_skewed() {
        let n = 1000;
        let d = Distribution::Zipfian(Zipfian::with_theta(n, 0.99, false));
        let h = histogram(&d, n, 200_000);
        // Unscrambled: item 0 is the hottest by far.
        assert!(h[0] > h[1] && h[1] >= h[5]);
        // The hottest item should carry a large share (zipf 0.99 over 1000
        // items gives item 0 about 1/zeta ≈ 13%).
        assert!(h[0] as f64 / 200_000.0 > 0.08, "head too light: {}", h[0]);
    }

    #[test]
    fn scrambling_moves_the_hot_spot_but_keeps_skew() {
        let n = 1000;
        let d = Distribution::zipfian(n);
        let h = histogram(&d, n, 200_000);
        let max = *h.iter().max().unwrap();
        assert!(max as f64 / 200_000.0 > 0.08, "skew lost after scrambling");
        // Hot item is (almost surely) not item 0 any more.
        assert!(h[0] < max);
    }

    #[test]
    fn uniform_is_flat() {
        let n = 100;
        let h = histogram(&Distribution::Uniform, n, 100_000);
        let (lo, hi) = (h.iter().min().unwrap(), h.iter().max().unwrap());
        assert!(*hi < 2 * *lo, "uniform too bumpy: {lo}..{hi}");
    }

    #[test]
    fn latest_prefers_recent() {
        let n = 1000;
        let d = Distribution::latest(n);
        let h = histogram(&d, n, 100_000);
        assert!(h[999] > h[0] * 5, "latest should favor the newest item");
    }

    #[test]
    fn latest_tracks_growing_n() {
        let d = Distribution::latest(100);
        let mut rng = SmallRng::seed_from_u64(1);
        // sampling with n=5000 must stay in range and favor the tail
        let mut tail = 0;
        for _ in 0..10_000 {
            let s = d.sample(&mut rng, 5000);
            assert!(s < 5000);
            if s > 4500 {
                tail += 1;
            }
        }
        assert!(tail > 5_000, "tail hits {tail}");
    }

    #[test]
    fn samples_cover_space() {
        // Unscrambled: the rank space itself must be fully covered.
        // (Scrambled zipfian, like YCSB's, loses some items to modulo
        // collisions by design.)
        let n = 50;
        let d = Distribution::Zipfian(Zipfian::with_theta(n, 0.99, false));
        let h = histogram(&d, n, 100_000);
        let misses = h.iter().filter(|&&c| c == 0).count();
        assert_eq!(misses, 0, "{misses} ranks never sampled");
    }

    #[test]
    fn huge_n_constructs_quickly_and_samples_in_range() {
        let z = Zipfian::new(10_000_000_000);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 10_000_000_000);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_items_panics() {
        let _ = Zipfian::new(0);
    }
}
