//! # ycsb — YCSB-style workload generation
//!
//! Reproduces the benchmark setup of the Sphinx paper's evaluation (§V-A):
//!
//! * **Workloads** A (50/50 read/update), B (95/5), C (read-only),
//!   D (95% *latest* reads, 5% updates), E (95% scans, 5% inserts) and
//!   LOAD (insert-only), via [`Workload`].
//! * **Request distributions**: zipfian with skew 0.99 (the YCSB default,
//!   scrambled over the key space), uniform, and "latest".
//! * **Datasets**: `u64` — 8-byte big-endian keys drawn from a uniform
//!   64-bit space — and `email` — synthetic addresses of 2–32 bytes
//!   averaging ≈19 bytes, standing in for the public email corpus the
//!   paper uses (the generator matches its published length statistics;
//!   see DESIGN.md).
//!
//! Everything is deterministic given a seed, and every worker derives its
//! own independent stream.
//!
//! ## Example
//!
//! ```
//! use ycsb::{KeySpace, Workload, OpStream, Op};
//!
//! let keyspace = KeySpace::U64;
//! let mut stream = OpStream::new(Workload::a(), 10_000, 42);
//! match stream.next_op() {
//!     Op::Read(idx) | Op::Update(idx) => {
//!         let key = keyspace.key(idx);
//!         assert_eq!(key.len(), 8);
//!     }
//!     _ => unreachable!("workload A only reads and updates"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
mod dist;
mod workload;

pub use dataset::{value_for, KeySpace, VALUE_LEN};
pub use dist::{Distribution, Zipfian};
pub use workload::{Op, OpStream, SharedInsertCursor, Workload};
