//! Workload mixes and per-worker operation streams.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::dist::Distribution;

/// One benchmark operation, in terms of *item indexes* (materialize keys
/// via [`KeySpace::key`](crate::KeySpace::key)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Point lookup of an existing item.
    Read(u64),
    /// Update the value of an existing item.
    Update(u64),
    /// Insert a brand-new item (index allocated from the shared cursor).
    Insert(u64),
    /// Range scan starting at an existing item, for `len` items.
    Scan(u64, usize),
    /// Read an item, then write it back modified (YCSB-F).
    ReadModifyWrite(u64),
}

/// The operation mix of a YCSB workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Workload name as used in the paper ("A".."E", "LOAD").
    pub name: &'static str,
    /// Fraction of reads.
    pub read: f64,
    /// Fraction of updates.
    pub update: f64,
    /// Fraction of inserts.
    pub insert: f64,
    /// Fraction of scans.
    pub scan: f64,
    /// Fraction of read-modify-writes (workload F).
    pub rmw: f64,
    /// Whether reads follow the "latest" distribution (workload D).
    pub latest: bool,
    /// Use a uniform request distribution instead of zipfian (not used by
    /// the paper's workloads; available for sensitivity studies).
    pub uniform: bool,
    /// Maximum scan length (YCSB default 100, uniform 1..=max).
    pub max_scan_len: usize,
}

impl Workload {
    /// YCSB-A: 50% reads, 50% updates, zipfian.
    pub fn a() -> Self {
        Workload {
            name: "A",
            read: 0.5,
            update: 0.5,
            insert: 0.0,
            scan: 0.0,
            rmw: 0.0,
            latest: false,
            uniform: false,
            max_scan_len: 0,
        }
    }

    /// Returns this workload with a uniform request distribution.
    ///
    /// # Examples
    ///
    /// ```
    /// use ycsb::Workload;
    /// let w = Workload::a().with_uniform();
    /// assert!(w.uniform);
    /// ```
    pub fn with_uniform(mut self) -> Self {
        self.uniform = true;
        self
    }

    /// YCSB-B: 95% reads, 5% updates, zipfian.
    pub fn b() -> Self {
        Workload {
            read: 0.95,
            update: 0.05,
            name: "B",
            ..Self::a()
        }
    }

    /// YCSB-C: 100% reads, zipfian.
    pub fn c() -> Self {
        Workload {
            read: 1.0,
            update: 0.0,
            name: "C",
            ..Self::a()
        }
    }

    /// YCSB-D as run in the paper: 95% reads over the *latest*
    /// distribution, 5% updates.
    pub fn d() -> Self {
        Workload {
            read: 0.95,
            update: 0.05,
            latest: true,
            name: "D",
            ..Self::a()
        }
    }

    /// YCSB-E: 95% scans (uniform length 1..=100), 5% inserts, zipfian.
    pub fn e() -> Self {
        Workload {
            name: "E",
            read: 0.0,
            update: 0.0,
            insert: 0.05,
            scan: 0.95,
            rmw: 0.0,
            latest: false,
            uniform: false,
            max_scan_len: 100,
        }
    }

    /// LOAD: 100% inserts.
    pub fn load() -> Self {
        Workload {
            read: 0.0,
            update: 0.0,
            insert: 1.0,
            scan: 0.0,
            name: "LOAD",
            ..Self::a()
        }
    }

    /// YCSB-F: 50% reads, 50% read-modify-writes. Not part of the paper's
    /// evaluation; provided for completeness (standard YCSB core suite).
    pub fn f() -> Self {
        Workload {
            read: 0.5,
            update: 0.0,
            rmw: 0.5,
            name: "F",
            ..Self::a()
        }
    }

    /// Looks a workload up by its paper name (case-insensitive).
    pub fn by_name(name: &str) -> Option<Workload> {
        match name.to_ascii_uppercase().as_str() {
            "A" => Some(Self::a()),
            "B" => Some(Self::b()),
            "C" => Some(Self::c()),
            "D" => Some(Self::d()),
            "E" => Some(Self::e()),
            "F" => Some(Self::f()),
            "LOAD" => Some(Self::load()),
            _ => None,
        }
    }
}

/// A shared, monotonically growing item-index cursor.
///
/// All workers allocating fresh indexes for inserts share one cursor, so
/// inserted items get globally unique indexes, and the "latest"
/// distribution can see the current population.
#[derive(Debug, Clone)]
pub struct SharedInsertCursor {
    next: Arc<AtomicU64>,
}

impl SharedInsertCursor {
    /// Creates a cursor starting after `preloaded` items.
    pub fn new(preloaded: u64) -> Self {
        SharedInsertCursor {
            next: Arc::new(AtomicU64::new(preloaded)),
        }
    }

    /// Allocates the next fresh item index.
    pub fn allocate(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    /// Current item population (preloaded + inserted so far).
    pub fn population(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }
}

/// A per-worker deterministic stream of operations.
#[derive(Debug)]
pub struct OpStream {
    workload: Workload,
    dist: Distribution,
    cursor: SharedInsertCursor,
    rng: SmallRng,
}

impl OpStream {
    /// Creates a stream over `preloaded` initial items with a fresh private
    /// cursor (single-worker usage).
    pub fn new(workload: Workload, preloaded: u64, seed: u64) -> Self {
        Self::with_cursor(
            workload,
            preloaded,
            seed,
            SharedInsertCursor::new(preloaded),
        )
    }

    /// Creates a stream sharing `cursor` with other workers. Give each
    /// worker a distinct `seed`.
    pub fn with_cursor(
        workload: Workload,
        preloaded: u64,
        seed: u64,
        cursor: SharedInsertCursor,
    ) -> Self {
        let dist = if workload.latest {
            Distribution::latest(preloaded.max(1))
        } else if workload.uniform {
            Distribution::Uniform
        } else {
            Distribution::zipfian(preloaded.max(1))
        };
        OpStream {
            workload,
            dist,
            cursor,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The shared insert cursor (to hand to other workers).
    pub fn cursor(&self) -> SharedInsertCursor {
        self.cursor.clone()
    }

    /// Draws the next operation.
    pub fn next_op(&mut self) -> Op {
        let w = &self.workload;
        let roll: f64 = self.rng.gen();
        let population = self.cursor.population().max(1);
        if roll < w.read {
            Op::Read(self.dist.sample(&mut self.rng, population))
        } else if roll < w.read + w.update {
            Op::Update(self.dist.sample(&mut self.rng, population))
        } else if roll < w.read + w.update + w.insert {
            Op::Insert(self.cursor.allocate())
        } else if roll < w.read + w.update + w.insert + w.rmw {
            Op::ReadModifyWrite(self.dist.sample(&mut self.rng, population))
        } else {
            let start = self.dist.sample(&mut self.rng, population);
            let len = self.rng.gen_range(1..=w.max_scan_len.max(1));
            Op::Scan(start, len)
        }
    }
}

/// `OpStream` is an infinite iterator of operations.
impl Iterator for OpStream {
    type Item = Op;

    fn next(&mut self) -> Option<Op> {
        Some(self.next_op())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix_counts(workload: Workload, n: usize) -> (usize, usize, usize, usize) {
        let mut s = OpStream::new(workload, 10_000, 1);
        let (mut r, mut u, mut i, mut sc) = (0, 0, 0, 0);
        for _ in 0..n {
            match s.next_op() {
                Op::Read(_) => r += 1,
                Op::Update(_) => u += 1,
                Op::Insert(_) => i += 1,
                Op::Scan(_, _) => sc += 1,
                Op::ReadModifyWrite(_) => unreachable!("no rmw in these mixes"),
            }
        }
        (r, u, i, sc)
    }

    #[test]
    fn workload_a_mix() {
        let (r, u, i, s) = mix_counts(Workload::a(), 100_000);
        assert!((45_000..55_000).contains(&r), "reads {r}");
        assert!((45_000..55_000).contains(&u), "updates {u}");
        assert_eq!(i + s, 0);
    }

    #[test]
    fn workload_b_and_c_mix() {
        let (r, u, _, _) = mix_counts(Workload::b(), 100_000);
        assert!((93_000..97_000).contains(&r));
        assert!((3_000..7_000).contains(&u));
        let (r, u, i, s) = mix_counts(Workload::c(), 10_000);
        assert_eq!((r, u, i, s), (10_000, 0, 0, 0));
    }

    #[test]
    fn workload_e_scans_and_inserts() {
        let (r, u, i, s) = mix_counts(Workload::e(), 100_000);
        assert_eq!(r + u, 0);
        assert!((3_000..7_000).contains(&i));
        assert!((93_000..97_000).contains(&s));
    }

    #[test]
    fn load_is_all_inserts_with_unique_indexes() {
        let mut s = OpStream::new(Workload::load(), 500, 3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            match s.next_op() {
                Op::Insert(idx) => {
                    assert!(idx >= 500);
                    assert!(seen.insert(idx), "duplicate insert index");
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn scan_lengths_in_bounds() {
        let mut s = OpStream::new(Workload::e(), 10_000, 9);
        for _ in 0..10_000 {
            if let Op::Scan(start, len) = s.next_op() {
                assert!(start < s.cursor.population());
                assert!((1..=100).contains(&len));
            }
        }
    }

    #[test]
    fn workload_d_reads_recent() {
        let mut s = OpStream::new(Workload::d(), 100_000, 5);
        let mut recent = 0;
        let mut reads = 0;
        for _ in 0..50_000 {
            if let Op::Read(idx) = s.next_op() {
                reads += 1;
                if idx > 90_000 {
                    recent += 1;
                }
            }
        }
        assert!(
            recent as f64 / reads as f64 > 0.5,
            "latest reads should hit the newest 10%: {recent}/{reads}"
        );
    }

    #[test]
    fn shared_cursor_is_global_across_workers() {
        let cursor = SharedInsertCursor::new(100);
        let mut a = OpStream::with_cursor(Workload::load(), 100, 1, cursor.clone());
        let mut b = OpStream::with_cursor(Workload::load(), 100, 2, cursor.clone());
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            if let Op::Insert(i) = a.next_op() {
                assert!(seen.insert(i));
            }
            if let Op::Insert(i) = b.next_op() {
                assert!(seen.insert(i));
            }
        }
        assert_eq!(cursor.population(), 300);
    }

    #[test]
    fn workload_f_mixes_reads_and_rmw() {
        let mut s = OpStream::new(Workload::f(), 10_000, 4);
        let (mut r, mut m) = (0, 0);
        for _ in 0..10_000 {
            match s.next_op() {
                Op::Read(_) => r += 1,
                Op::ReadModifyWrite(_) => m += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!((4_000..6_000).contains(&r));
        assert!((4_000..6_000).contains(&m));
    }

    #[test]
    fn by_name_roundtrip() {
        for name in ["A", "b", "C", "d", "E", "F", "load"] {
            assert!(Workload::by_name(name).is_some(), "{name}");
        }
        assert!(Workload::by_name("Z").is_none());
    }

    #[test]
    fn uniform_variant_spreads_requests() {
        let mut s = OpStream::new(Workload::c().with_uniform(), 1_000, 5);
        let mut counts = vec![0u32; 1_000];
        for _ in 0..100_000 {
            if let Op::Read(i) = s.next_op() {
                counts[i as usize] += 1;
            }
        }
        let max = *counts.iter().max().unwrap();
        assert!(max < 300, "uniform workload too skewed: max bucket {max}");
    }

    #[test]
    fn op_stream_is_an_infinite_iterator() {
        let ops: Vec<Op> = OpStream::new(Workload::a(), 100, 1).take(25).collect();
        assert_eq!(ops.len(), 25);
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = OpStream::new(Workload::a(), 1000, 77);
        let mut b = OpStream::new(Workload::a(), 1000, 77);
        for _ in 0..100 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }
}
