//! # reclaim — epoch-based remote-memory reclamation for disaggregated indexes
//!
//! Lock-free readers over one-sided RDMA synchronize with writers only
//! through header metadata and leaf checksums, so a region that is freed
//! and reused can pass validation as a *different, perfectly valid* node.
//! Unlinking a node therefore must not free it immediately: the region has
//! to sit out a **grace period** until every client that could still hold
//! its address has provably moved on. This crate implements that protocol
//! — epoch-based reclamation (EBR) adapted to disaggregated memory, where
//! the shared state itself lives in MN memory and is manipulated with
//! one-sided verbs:
//!
//! * a **cluster-global epoch word** on one MN, advanced with RDMA FAA by
//!   clients that have retirements pending;
//! * a **slot array** next to it, one word per registered client, where
//!   each client periodically republishes the newest epoch it has
//!   observed (its *pin*). A slot value of `0` means "not registered";
//! * a per-client **limbo list** of `(ptr, retire_epoch, bytes)` entries
//!   collected from every unlink/tombstone site in the index protocols;
//! * an amortized **scan** — one doorbell round trip — that refreshes the
//!   client's slot, advances the epoch, stamps new limbo entries, and
//!   batch-frees every entry whose grace period has elapsed through the
//!   substrate's reclamation path ([`Transport::free_many`]).
//!
//! ## The grace-period argument
//!
//! Scans run only at operation boundaries, when the scanning client holds
//! no node addresses. Stamping an entry with the epoch `r` returned by the
//! scan's FAA means the `r → r+1` transition happened *at* that scan —
//! i.e. at or after the moment the node was unlinked. The epoch word is
//! monotone, so another client whose slot shows `v ≥ r + grace` (with
//! `grace ≥ 1`) must have *read* the epoch after that transition — at one
//! of its own operation boundaries, after the unlink. Every address it
//! holds was therefore acquired after the node left the structure, and
//! validated traversal can never be routed *into* an unlinked node, so
//! the region is unreachable from that client. When every other
//! registered slot satisfies the bound, the region is free to reuse.
//! See `docs/RECLAMATION.md` for the full argument.
//!
//! Stale slots (a registered client that stops scanning) only *delay*
//! reclamation, never make it unsafe.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, Ordering};

use dm_sim::{DmError, DoorbellBatch, RemotePtr, Transport, Verb, VerbResult};

/// Process-wide zero-grace-period override — the **broken-protocol mode**
/// behind the CI negative test (mirrors `node_engine::set_leaf_validation`).
///
/// When set, every [`ReclaimHandle::retire`] frees the region immediately,
/// with no grace period: the allocator's LIFO free lists promptly hand the
/// region to the next allocation while concurrent readers may still hold
/// its address, and the linearizability checker must catch the resulting
/// use-after-free serving.
static ZERO_GRACE: AtomicBool = AtomicBool::new(false);

/// Enables or disables the zero-grace-period override (default: off).
/// Intended only for negative tests; affects every handle in the process.
pub fn set_zero_grace(enabled: bool) {
    ZERO_GRACE.store(enabled, Ordering::SeqCst);
}

/// Whether the zero-grace-period override is on.
pub fn zero_grace() -> bool {
    ZERO_GRACE.load(Ordering::SeqCst)
}

/// Tuning knobs for one reclamation domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReclaimConfig {
    /// Master switch. When `false`, [`ReclaimHandle::retire`] reverts to
    /// the pre-reclamation behaviour (the region is leaked) — useful for
    /// memory-usage comparisons like Fig. 6.
    pub enabled: bool,
    /// Epochs a limbo entry must age before it may be freed. Safety needs
    /// `≥ 1` (see the crate docs); the default keeps one extra epoch of
    /// margin. `0` reproduces the unsafe immediate-free protocol the
    /// negative lincheck control exercises.
    pub grace_epochs: u64,
    /// Operations between amortized scans (one extra round trip each).
    pub scan_interval: u64,
    /// Limbo entries that force a scan at the next operation boundary
    /// even before `scan_interval` elapses.
    pub limbo_soft_cap: usize,
    /// Capacity of the slot array — the maximum number of clients that
    /// can ever register with the domain.
    pub max_clients: usize,
}

impl Default for ReclaimConfig {
    fn default() -> Self {
        ReclaimConfig {
            enabled: true,
            grace_epochs: 2,
            scan_interval: 128,
            limbo_soft_cap: 512,
            max_clients: 64,
        }
    }
}

/// Counters describing one handle's reclamation activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReclaimStats {
    /// Regions handed to [`ReclaimHandle::retire`].
    pub retired_count: u64,
    /// Bytes handed to [`ReclaimHandle::retire`] (caller-reported sizes).
    pub retired_bytes: u64,
    /// Regions actually freed back to their MN pools.
    pub freed_count: u64,
    /// Bytes actually freed back to their MN pools.
    pub freed_bytes: u64,
    /// Scans performed (slot refresh + stamp + free check).
    pub scans: u64,
    /// Times this handle's scan advanced the global epoch.
    pub epoch_advances: u64,
    /// Scans or frees that hit a substrate error (kept out of the user
    /// operation's result; should stay 0 in healthy runs).
    pub errors: u64,
    /// Freed entries whose epoch lag (free epoch − retire epoch) was ≤ 1.
    pub lag_le_1: u64,
    /// Freed entries with epoch lag ≤ 2 (and > 1).
    pub lag_le_2: u64,
    /// Freed entries with epoch lag ≤ 4 (and > 2).
    pub lag_le_4: u64,
    /// Freed entries with epoch lag > 4.
    pub lag_gt_4: u64,
}

impl ReclaimStats {
    fn note_lag(&mut self, lag: u64) {
        match lag {
            0..=1 => self.lag_le_1 += 1,
            2 => self.lag_le_2 += 1,
            3..=4 => self.lag_le_4 += 1,
            _ => self.lag_gt_4 += 1,
        }
    }
}

/// One region awaiting its grace period.
#[derive(Debug, Clone, Copy)]
struct LimboEntry {
    ptr: RemotePtr,
    /// Epoch stamped at the first scan after retirement; `None` until then.
    retire_epoch: Option<u64>,
    bytes: u64,
}

/// A reclamation domain: the MN-resident epoch word + slot array one index
/// shares across all its clients. Cheap to clone (a few pointers).
#[derive(Debug, Clone)]
pub struct ReclaimDomain {
    epoch_ptr: RemotePtr,
    slots_ptr: RemotePtr,
    reg_ptr: RemotePtr,
    config: ReclaimConfig,
}

impl ReclaimDomain {
    /// Allocates the domain's shared words on memory node `mn_id`: the
    /// global epoch word (initialized to 1 so that slot value 0 can mean
    /// "not registered"), the registration counter, and the slot array.
    ///
    /// # Errors
    ///
    /// Propagates substrate allocation/write errors.
    pub fn create<T: Transport>(
        t: &mut T,
        mn_id: u16,
        config: ReclaimConfig,
    ) -> Result<Self, DmError> {
        let epoch_ptr = t.alloc(mn_id, 8)?;
        t.write_u64(epoch_ptr, 1)?;
        let reg_ptr = t.alloc(mn_id, 8)?;
        let slots_ptr = t.alloc(mn_id, config.max_clients * 8)?;
        Ok(ReclaimDomain {
            epoch_ptr,
            slots_ptr,
            reg_ptr,
            config,
        })
    }

    /// This domain's configuration.
    pub fn config(&self) -> ReclaimConfig {
        self.config
    }

    /// Registers a client: adopts a vacated slot when one exists
    /// (deregister zeroes its slot), else claims a fresh one via FAA on
    /// the registration high-water mark, and publishes the current epoch
    /// into it. A few round trips, off the operation fast path.
    ///
    /// Slot adoption is what makes [`ReclaimConfig::max_clients`] a bound
    /// on *concurrent* clients rather than on cumulative registrations:
    /// benchmark harnesses that spawn and deregister worker fleets run
    /// after run against one long-lived index would otherwise exhaust the
    /// array (this was a real panic in the fig5 worker ladder).
    ///
    /// # Errors
    ///
    /// Returns [`DmError::OutOfMemory`] when the slot array is exhausted
    /// (more than [`ReclaimConfig::max_clients`] *live* registrations),
    /// or any substrate error.
    pub fn register<T: Transport>(&self, t: &mut T) -> Result<ReclaimHandle, DmError> {
        let batch: DoorbellBatch = [
            Verb::Read {
                ptr: self.slots_ptr,
                len: self.config.max_clients * 8,
            },
            // FAA with delta 0 is an atomic read of a word.
            Verb::Faa {
                ptr: self.reg_ptr,
                delta: 0,
            },
            Verb::Faa {
                ptr: self.epoch_ptr,
                delta: 0,
            },
        ]
        .into_iter()
        .collect();
        let res = t.execute(batch)?;
        let slots_bytes = match &res[0] {
            VerbResult::Read(b) => b,
            _ => unreachable!("read result"),
        };
        let high_water = match res[1] {
            VerbResult::Faa(v) => v,
            _ => unreachable!("faa result"),
        };
        let epoch = match res[2] {
            VerbResult::Faa(v) => v,
            _ => unreachable!("faa result"),
        };

        // Adoption pass: a zeroed slot below the high-water mark was
        // vacated by a deregistered client (never-allocated slots sit at
        // or above the mark, so a zero there is not claimable — a racing
        // fresh registrant may have been assigned it by FAA without
        // having written its epoch yet). The CAS arbitrates racing
        // adopters; losing one just tries the next candidate. Publishing
        // the pre-read epoch is conservative: it can only be stale-low,
        // which delays peers' frees until this client's first scan.
        let allocated = (high_water as usize).min(self.config.max_clients);
        for (idx, chunk) in slots_bytes[..allocated * 8].chunks_exact(8).enumerate() {
            if u64::from_le_bytes(chunk.try_into().expect("8-byte slot")) != 0 {
                continue;
            }
            let slot_ptr = self
                .slots_ptr
                .checked_add(idx as u64 * 8)
                .expect("slot array fits the address space");
            if t.cas(slot_ptr, 0, epoch)? == 0 {
                return Ok(self.handle_at(idx, slot_ptr, epoch));
            }
        }

        // Fresh slot: bump the high-water mark. Adopted slots never bump
        // it, so FAA indices stay collision-free with adoption.
        let res = t.execute(
            [Verb::Faa {
                ptr: self.reg_ptr,
                delta: 1,
            }]
            .into_iter()
            .collect(),
        )?;
        let idx = match res[0] {
            VerbResult::Faa(v) => v,
            _ => unreachable!("faa result"),
        };
        if idx as usize >= self.config.max_clients {
            return Err(DmError::OutOfMemory {
                mn_id: self.slots_ptr.mn_id(),
                requested: 8,
            });
        }
        let slot_ptr = self
            .slots_ptr
            .checked_add(idx * 8)
            .expect("slot array fits the address space");
        t.write_u64(slot_ptr, epoch)?;
        Ok(self.handle_at(idx as usize, slot_ptr, epoch))
    }

    fn handle_at(&self, slot_idx: usize, slot_ptr: RemotePtr, epoch: u64) -> ReclaimHandle {
        ReclaimHandle {
            domain: self.clone(),
            slot_idx,
            slot_ptr,
            cached_epoch: epoch,
            ops_since_scan: 0,
            limbo: Vec::new(),
            stats: ReclaimStats::default(),
            active: true,
        }
    }
}

/// A per-client reclamation handle: the client's slot, its limbo list,
/// and the amortized scan machinery. One per worker, like the transport.
#[derive(Debug)]
pub struct ReclaimHandle {
    domain: ReclaimDomain,
    slot_idx: usize,
    slot_ptr: RemotePtr,
    cached_epoch: u64,
    ops_since_scan: u64,
    limbo: Vec<LimboEntry>,
    stats: ReclaimStats,
    active: bool,
}

impl ReclaimHandle {
    /// Marks an operation entry. Pinning is implicit in this protocol —
    /// the slot published at the last scan already lower-bounds every
    /// address the client can hold — so this is free; it exists so call
    /// sites document the op-boundary discipline scans rely on.
    #[inline]
    pub fn pin(&mut self) {}

    /// Whether the next [`unpin`](Self::unpin) will run a scan — lets the
    /// caller attribute the scan's round trip to its maintenance phase
    /// *before* issuing it.
    pub fn scan_due(&self) -> bool {
        self.active
            && self.domain.config.enabled
            && (self.ops_since_scan + 1 >= self.domain.config.scan_interval
                || self.limbo.len() >= self.domain.config.limbo_soft_cap)
    }

    /// Marks an operation exit and, every [`ReclaimConfig::scan_interval`]
    /// operations (or sooner once the limbo list passes its soft cap),
    /// runs one [`scan`](Self::scan). Returns `true` if a scan ran, so the
    /// caller can attribute the round trip to its maintenance phase.
    pub fn unpin<T: Transport>(&mut self, t: &mut T) -> bool {
        self.ops_since_scan += 1;
        if !self.active || !self.domain.config.enabled {
            return false;
        }
        if self.ops_since_scan >= self.domain.config.scan_interval
            || self.limbo.len() >= self.domain.config.limbo_soft_cap
        {
            self.scan(t);
            return true;
        }
        false
    }

    /// Hands an unlinked region to the reclaimer. The caller must have
    /// already made the region unreachable (won the CAS that unlinked it);
    /// `bytes` is the caller's size accounting for telemetry.
    ///
    /// With a grace period configured this costs no round trip (the entry
    /// just enters limbo). With `grace_epochs == 0` or the process-wide
    /// [`set_zero_grace`] override the region is freed immediately —
    /// deliberately unsafe, for the negative lincheck control; substrate
    /// errors (e.g. double frees, which that mode can produce) are
    /// swallowed into [`ReclaimStats::errors`] so the serving path keeps
    /// running broken rather than crashing.
    pub fn retire<T: Transport>(&mut self, t: &mut T, ptr: RemotePtr, bytes: u64) {
        if ptr.is_null() || !self.domain.config.enabled {
            return;
        }
        self.stats.retired_count += 1;
        self.stats.retired_bytes += bytes;
        if self.domain.config.grace_epochs == 0 || zero_grace() {
            match t.free(ptr) {
                Ok(()) => {
                    self.stats.freed_count += 1;
                    self.stats.freed_bytes += bytes;
                }
                Err(_) => self.stats.errors += 1,
            }
            return;
        }
        self.limbo.push(LimboEntry {
            ptr,
            retire_epoch: None,
            bytes,
        });
    }

    /// One amortized reclamation step — a single doorbell round trip to
    /// the domain MN that:
    ///
    /// 1. republishes this client's slot (the epoch cached at the previous
    ///    scan — a value read at an operation boundary);
    /// 2. FAAs the global epoch, advancing it iff this handle has limbo
    ///    entries (idle readers refresh their slot without churning the
    ///    epoch);
    /// 3. reads the whole slot array.
    ///
    /// Unstamped limbo entries are stamped with the FAA's returned epoch,
    /// and every entry whose `retire_epoch + grace` is at or below the
    /// minimum of the *other* registered slots is batch-freed through
    /// [`Transport::free_many`]. Substrate errors increment
    /// [`ReclaimStats::errors`] instead of failing the caller's operation.
    pub fn scan<T: Transport>(&mut self, t: &mut T) {
        if !self.active || !self.domain.config.enabled {
            return;
        }
        self.ops_since_scan = 0;
        self.stats.scans += 1;
        let delta = u64::from(!self.limbo.is_empty());
        let slots_len = self.domain.config.max_clients * 8;
        let batch: DoorbellBatch = [
            Verb::Write {
                ptr: self.slot_ptr,
                data: self.cached_epoch.to_le_bytes().to_vec(),
            },
            Verb::Faa {
                ptr: self.domain.epoch_ptr,
                delta,
            },
            Verb::Read {
                ptr: self.domain.slots_ptr,
                len: slots_len,
            },
        ]
        .into_iter()
        .collect();
        let res = match t.execute(batch) {
            Ok(res) => res,
            Err(_) => {
                self.stats.errors += 1;
                return;
            }
        };
        let epoch_before = match res[1] {
            VerbResult::Faa(v) => v,
            _ => unreachable!("faa result"),
        };
        let slots_bytes = match &res[2] {
            VerbResult::Read(b) => b,
            _ => unreachable!("read result"),
        };
        self.stats.epoch_advances += delta;
        let current = epoch_before + delta;
        self.cached_epoch = current;

        // Stamp entries retired since the last scan. `epoch_before` is the
        // epoch whose advance this very scan performed (when delta is 1),
        // so the transition other clients must witness happens after every
        // one of these unlinks.
        for e in &mut self.limbo {
            if e.retire_epoch.is_none() {
                e.retire_epoch = Some(epoch_before);
            }
        }

        // Minimum pin among the *other* registered clients (slot 0 means
        // unregistered). This handle is at an operation boundary and holds
        // no addresses, so its own slot is irrelevant to its own frees.
        let mut min_other = u64::MAX;
        for (i, chunk) in slots_bytes.chunks_exact(8).enumerate() {
            if i == self.slot_idx {
                continue;
            }
            let v = u64::from_le_bytes(chunk.try_into().expect("8-byte slot"));
            if v != 0 {
                min_other = min_other.min(v);
            }
        }

        let grace = self.domain.config.grace_epochs;
        let mut freeable: Vec<RemotePtr> = Vec::new();
        let mut kept: Vec<LimboEntry> = Vec::new();
        let mut freed_bytes = 0u64;
        for e in self.limbo.drain(..) {
            match e.retire_epoch {
                Some(r) if r.saturating_add(grace) <= min_other => {
                    self.stats.note_lag(current.saturating_sub(r));
                    freed_bytes += e.bytes;
                    freeable.push(e.ptr);
                }
                _ => kept.push(e),
            }
        }
        self.limbo = kept;
        if freeable.is_empty() {
            return;
        }
        match t.free_many(&freeable) {
            Ok(()) => {
                self.stats.freed_count += freeable.len() as u64;
                self.stats.freed_bytes += freed_bytes;
            }
            // A failed batch leaves an unknown prefix freed; dropping the
            // entries leaks the rest rather than risking double frees.
            Err(_) => self.stats.errors += 1,
        }
    }

    /// Scans until the limbo list drains or `max_rounds` scans elapse;
    /// returns whether it drained. With concurrent registered peers their
    /// slots must advance too — quiesce every worker round-robin.
    pub fn quiesce<T: Transport>(&mut self, t: &mut T, max_rounds: usize) -> bool {
        for _ in 0..max_rounds {
            if self.limbo.is_empty() {
                return true;
            }
            self.scan(t);
        }
        self.limbo.is_empty()
    }

    /// Withdraws this client from the domain: zeroes its slot so it no
    /// longer gates anyone's grace periods, and deactivates the handle.
    /// Entries still in limbo stay unreclaimed (drain with
    /// [`quiesce`](Self::quiesce) first).
    pub fn deregister<T: Transport>(&mut self, t: &mut T) {
        if !self.active {
            return;
        }
        if t.write_u64(self.slot_ptr, 0).is_err() {
            self.stats.errors += 1;
        }
        self.active = false;
    }

    /// This handle's counters.
    pub fn stats(&self) -> ReclaimStats {
        self.stats
    }

    /// Entries currently in limbo.
    pub fn limbo_len(&self) -> usize {
        self.limbo.len()
    }

    /// Bytes currently in limbo.
    pub fn limbo_bytes(&self) -> u64 {
        self.limbo.iter().map(|e| e.bytes).sum()
    }

    /// The newest epoch this handle has observed.
    pub fn cached_epoch(&self) -> u64 {
        self.cached_epoch
    }

    /// The slot index this handle occupies in the domain's array.
    pub fn slot_index(&self) -> usize {
        self.slot_idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_sim::{ClusterConfig, DmCluster};

    fn cluster() -> DmCluster {
        DmCluster::new(ClusterConfig {
            num_mns: 2,
            num_cns: 2,
            mn_capacity: 1 << 20,
            ..Default::default()
        })
    }

    fn small_config() -> ReclaimConfig {
        ReclaimConfig {
            scan_interval: 4,
            ..ReclaimConfig::default()
        }
    }

    #[test]
    fn deregistered_slots_are_adopted_not_leaked() {
        let c = cluster();
        let mut t = c.client(0);
        let cfg = ReclaimConfig {
            max_clients: 2,
            ..ReclaimConfig::default()
        };
        let domain = ReclaimDomain::create(&mut t, 0, cfg).unwrap();

        // Churn far past max_clients: each generation vacates its slot,
        // the next adopts it. Before slot adoption this panicked at the
        // third registration (cumulative FAA indices exhaust the array).
        let mut persistent = domain.register(&mut t).unwrap();
        for _ in 0..10 {
            let mut h = domain.register(&mut t).unwrap();
            assert_eq!(h.slot_index(), 1, "adopts the one vacated slot");
            h.deregister(&mut t);
        }

        // The bound still holds for *concurrent* clients.
        let mut second = domain.register(&mut t).unwrap();
        assert!(matches!(
            domain.register(&mut t),
            Err(DmError::OutOfMemory { .. })
        ));
        second.deregister(&mut t);
        persistent.deregister(&mut t);
    }

    #[test]
    fn solo_client_drains_after_scan() {
        let c = cluster();
        let mut t = c.client(0);
        let domain = ReclaimDomain::create(&mut t, 0, small_config()).unwrap();
        let mut h = domain.register(&mut t).unwrap();

        let p = t.alloc(1, 128).unwrap();
        let live_before = c.mn(1).unwrap().alloc_stats().live_bytes;
        h.retire(&mut t, p, 128);
        assert_eq!(h.limbo_len(), 1);
        assert_eq!(c.mn(1).unwrap().alloc_stats().live_bytes, live_before);

        // No other registered client: the first scan stamps and frees.
        h.scan(&mut t);
        assert_eq!(h.limbo_len(), 0);
        let stats = c.mn(1).unwrap().alloc_stats();
        assert_eq!(stats.live_bytes, live_before - 128);
        assert_eq!(stats.reclaimed_bytes, 128);
        assert_eq!(h.stats().freed_bytes, 128);
        assert_eq!(h.stats().retired_bytes, 128);
        assert_eq!(h.stats().errors, 0);
    }

    #[test]
    fn unpin_triggers_scan_on_interval() {
        let c = cluster();
        let mut t = c.client(0);
        let domain = ReclaimDomain::create(&mut t, 0, small_config()).unwrap();
        let mut h = domain.register(&mut t).unwrap();
        let p = t.alloc(0, 64).unwrap();
        h.retire(&mut t, p, 64);
        let mut scanned = 0;
        for _ in 0..4 {
            h.pin();
            if h.unpin(&mut t) {
                scanned += 1;
            }
        }
        assert_eq!(scanned, 1, "interval of 4 yields one scan in 4 ops");
        assert_eq!(h.stats().freed_bytes, 64);
    }

    #[test]
    fn peer_pin_gates_the_grace_period() {
        let c = cluster();
        let mut ta = c.client(0);
        let mut tb = c.client(1);
        let domain = ReclaimDomain::create(&mut ta, 0, small_config()).unwrap();
        let mut a = domain.register(&mut ta).unwrap();
        let mut b = domain.register(&mut tb).unwrap();

        let p = ta.alloc(0, 256).unwrap();
        a.retire(&mut ta, p, 256);
        a.scan(&mut ta);
        assert_eq!(
            a.limbo_len(),
            1,
            "peer's stale pin must hold the entry in limbo"
        );

        // Round-robin scans: B republishes fresher pins, A's grace elapses.
        let mut rounds = 0;
        while a.limbo_len() > 0 && rounds < 10 {
            b.scan(&mut tb);
            a.scan(&mut ta);
            rounds += 1;
        }
        assert_eq!(a.limbo_len(), 0, "drained after {rounds} rounds");
        assert_eq!(a.stats().freed_bytes, 256);
        assert!(a.stats().epoch_advances >= 1);
        assert_eq!(a.stats().errors, 0);
        assert_eq!(b.stats().errors, 0);
        // B never had retirements: its scans must not advance the epoch.
        assert_eq!(b.stats().epoch_advances, 0);
    }

    #[test]
    fn deregistered_peer_stops_gating() {
        let c = cluster();
        let mut ta = c.client(0);
        let mut tb = c.client(1);
        let domain = ReclaimDomain::create(&mut ta, 0, small_config()).unwrap();
        let mut a = domain.register(&mut ta).unwrap();
        let mut b = domain.register(&mut tb).unwrap();

        let p = ta.alloc(0, 64).unwrap();
        a.retire(&mut ta, p, 64);
        a.scan(&mut ta);
        assert_eq!(a.limbo_len(), 1);

        b.deregister(&mut tb);
        a.scan(&mut ta);
        assert_eq!(a.limbo_len(), 0, "zeroed slot no longer gates the free");
    }

    #[test]
    fn zero_grace_config_frees_immediately() {
        let c = cluster();
        let mut t = c.client(0);
        let cfg = ReclaimConfig {
            grace_epochs: 0,
            ..small_config()
        };
        let domain = ReclaimDomain::create(&mut t, 0, cfg).unwrap();
        let mut h = domain.register(&mut t).unwrap();
        let p = t.alloc(0, 64).unwrap();
        let live = c.mn(0).unwrap().alloc_stats().live_bytes;
        h.retire(&mut t, p, 64);
        assert_eq!(h.limbo_len(), 0);
        assert_eq!(c.mn(0).unwrap().alloc_stats().live_bytes, live - 64);
        // Double retire (the bug this mode exists to exhibit) is swallowed.
        h.retire(&mut t, p, 64);
        assert_eq!(h.stats().errors, 1);
    }

    #[test]
    fn disabled_domain_leaks_like_before() {
        let c = cluster();
        let mut t = c.client(0);
        let cfg = ReclaimConfig {
            enabled: false,
            ..ReclaimConfig::default()
        };
        let domain = ReclaimDomain::create(&mut t, 0, cfg).unwrap();
        let mut h = domain.register(&mut t).unwrap();
        let p = t.alloc(0, 64).unwrap();
        let live = c.mn(0).unwrap().alloc_stats().live_bytes;
        h.retire(&mut t, p, 64);
        h.scan(&mut t);
        assert_eq!(h.limbo_len(), 0);
        assert_eq!(h.stats().retired_bytes, 0);
        assert_eq!(c.mn(0).unwrap().alloc_stats().live_bytes, live);
    }

    #[test]
    fn registration_exhaustion_is_reported() {
        let c = cluster();
        let mut t = c.client(0);
        let cfg = ReclaimConfig {
            max_clients: 2,
            ..ReclaimConfig::default()
        };
        let domain = ReclaimDomain::create(&mut t, 0, cfg).unwrap();
        let _a = domain.register(&mut t).unwrap();
        let _b = domain.register(&mut t).unwrap();
        assert!(matches!(
            domain.register(&mut t),
            Err(DmError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn retire_null_is_a_noop() {
        let c = cluster();
        let mut t = c.client(0);
        let domain = ReclaimDomain::create(&mut t, 0, small_config()).unwrap();
        let mut h = domain.register(&mut t).unwrap();
        h.retire(&mut t, RemotePtr::NULL, 64);
        assert_eq!(h.limbo_len(), 0);
        assert_eq!(h.stats().retired_count, 0);
    }

    #[test]
    fn scan_is_one_round_trip() {
        let c = cluster();
        let mut t = c.client(0);
        let domain = ReclaimDomain::create(&mut t, 0, small_config()).unwrap();
        let mut h = domain.register(&mut t).unwrap();
        let before = t.stats().round_trips;
        h.scan(&mut t);
        assert_eq!(t.stats().round_trips - before, 1);
    }
}
