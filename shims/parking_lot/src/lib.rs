//! Offline shim: the subset of `parking_lot` this workspace uses, backed by
//! `std::sync`. The build environment has no crates.io access, so the
//! workspace vendors the handful of external APIs it consumes (see
//! `shims/README.md`). Semantics match parking_lot where it matters here:
//! `lock()` returns the guard directly (no poisoning — a poisoned std mutex
//! is recovered transparently, matching parking_lot's panic-transparent
//! behaviour).

#![forbid(unsafe_code)]

use std::sync::{MutexGuard as StdMutexGuard, PoisonError};

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

/// A mutual-exclusion lock with the `parking_lot` calling convention.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
