//! Offline shim: the subset of `rand` 0.8 this workspace uses (see
//! `shims/README.md`). `SmallRng` is xoshiro256++ seeded through SplitMix64
//! — the same family the real crate uses — so streams are deterministic,
//! fast, and statistically sound for workload generation and tests.

#![forbid(unsafe_code)]

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, matching `rand::SeedableRng`'s surface.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their full domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value inside the range.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer draw in `[0, span)` via 128-bit multiply-shift.
fn mul_shift(rng_word: u64, span: u64) -> u64 {
    ((rng_word as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(mul_shift(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(mul_shift(rng.next_u64(), span as u64) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, matching `rand::Rng`'s surface.
pub trait Rng: RngCore {
    /// Draws a value uniformly over the type's full domain (`f64`/`f32`
    /// draw from `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_range(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 stream expands the seed into the full state,
            // guaranteeing a non-zero state for any seed.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let (va, vb, vc): (u64, u64, u64) = (a.gen(), b.gen(), c.gen());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(1usize..=3);
            assert!((1..=3).contains(&w));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.9)).count();
        assert!((88_000..92_000).contains(&hits), "p=0.9 gave {hits}/100000");
    }
}
