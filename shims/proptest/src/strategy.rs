//! Value-generation strategies (no shrinking — see the crate docs).

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!` to mix arm types).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Types with a canonical full-domain strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws one value over the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.0.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

/// The full-domain strategy for `T`: `any::<u8>()` etc.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// A type-erased strategy (see [`Strategy::boxed`]).
pub struct BoxedStrategy<V>(Box<dyn ObjectSafeStrategy<Value = V>>);

/// Object-safe core of [`Strategy`] backing [`BoxedStrategy`].
trait ObjectSafeStrategy {
    type Value;
    fn gen_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> ObjectSafeStrategy for S {
    type Value = S::Value;
    fn gen_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.gen_value(rng)
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn gen_value(&self, rng: &mut TestRng) -> V {
        self.0.gen_dyn(rng)
    }
}

/// Weighted choice between strategies of one value type (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total_weight: u64,
}

impl<V> Union<V> {
    /// Builds a union; weights must sum to a positive value.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total_weight = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(
            total_weight > 0,
            "prop_oneof! needs at least one weighted arm"
        );
        Union { arms, total_weight }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn gen_value(&self, rng: &mut TestRng) -> V {
        let mut roll = rng.0.gen_range(0..self.total_weight);
        for (weight, strat) in &self.arms {
            if roll < u64::from(*weight) {
                return strat.gen_value(rng);
            }
            roll -= u64::from(*weight);
        }
        unreachable!("roll within total weight")
    }
}

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_for_tuple {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )*};
}
impl_strategy_for_tuple! {
    (S0.0)
    (S0.0, S1.1)
    (S0.0, S1.1, S2.2)
    (S0.0, S1.1, S2.2, S3.3)
    (S0.0, S1.1, S2.2, S3.3, S4.4)
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5)
}
