//! Case-count configuration and the deterministic per-test RNG.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Failure payload of one generated case (a plain message in this shim).
pub type TestCaseError = String;

/// Runner configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 64 }
    }
}

/// The RNG handed to strategies: deterministic per test name, so a failure
/// reproduces on re-run (there is no shrinking in this shim).
pub struct TestRng(pub(crate) SmallRng);

impl TestRng {
    /// Seeds the case stream from the test's name (FNV-1a).
    pub fn for_test(test_name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(SmallRng::seed_from_u64(h))
    }
}
