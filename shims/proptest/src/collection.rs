//! Collection strategies: `vec` and `btree_set`.

use std::collections::BTreeSet;

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A size specification: a fixed length or a half-open range of lengths.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        if self.lo + 1 >= self.hi {
            self.lo
        } else {
            rng.0.gen_range(self.lo..self.hi)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Generates `Vec`s of `element` values with lengths drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.gen_value(rng)).collect()
    }
}

/// Generates `BTreeSet`s of `element` values with sizes drawn from `size`
/// (smaller when the element domain can't fill the target).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.sample(rng);
        let mut set = BTreeSet::new();
        // Bounded attempts: narrow domains (e.g. u8 sets of 200) top out
        // below the target rather than looping forever.
        for _ in 0..target.saturating_mul(8) {
            if set.len() >= target {
                break;
            }
            set.insert(self.element.gen_value(rng));
        }
        set
    }
}
