//! Offline shim: the subset of `proptest` this workspace uses (see
//! `shims/README.md`). Random-input generation, weighted unions, mapped and
//! collection strategies, and the `proptest!`/`prop_assert*!` macros — but
//! **no shrinking**: a failing case reports its generated inputs verbatim.
//! Case streams are deterministic per test name, so failures reproduce.

#![forbid(unsafe_code)]

use std::fmt::Debug;

pub mod strategy;

pub mod collection;

pub mod test_runner;

pub use strategy::{any, BoxedStrategy, Just, Strategy};
pub use test_runner::{Config as ProptestConfig, TestRng};

/// Everything the property-test files import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Outcome of one generated case: `Err` carries the failure message.
pub type TestCaseResult = Result<(), String>;

/// Runs `cases` generated inputs of `strategy` through `body`, panicking
/// with the offending input on the first failure. Backs the [`proptest!`]
/// macro; not part of the public proptest API.
pub fn run_cases<S: Strategy>(
    test_name: &str,
    config: &test_runner::Config,
    strategy: &S,
    body: impl Fn(S::Value) -> TestCaseResult,
) where
    S::Value: Debug,
{
    let mut rng = TestRng::for_test(test_name);
    for case in 0..config.cases {
        let value = strategy.gen_value(&mut rng);
        let desc = format!("{value:?}");
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(value)));
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(msg)) => panic!(
                "proptest case {case}/{cases} of `{test_name}` failed: {msg}\n\
                 input: {desc}",
                cases = config.cases,
            ),
            Err(payload) => {
                eprintln!(
                    "proptest case {case}/{cases} of `{test_name}` panicked\n\
                     input: {desc}",
                    cases = config.cases,
                );
                std::panic::resume_unwind(payload);
            }
        }
    }
}

/// Declares property tests: `proptest! { #![proptest_config(..)] #[test]
/// fn name(x in strategy, ..) { body } .. }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; do not use directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let __config = $cfg;
            let __strategy = ($($strat,)+);
            $crate::run_cases(
                stringify!($name),
                &__config,
                &__strategy,
                |($($arg,)+)| -> $crate::TestCaseResult {
                    $body
                    Ok(())
                },
            );
        }
    )*};
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", ..)` — fails the
/// current case without panicking the whole runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// `prop_assert_eq!(left, right)` with optional message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            ));
        }
    }};
}

/// `prop_assert_ne!(left, right)` with optional message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err(format!("{}\n  both: {:?}", format!($($fmt)+), l));
        }
    }};
}

/// Weighted or unweighted choice between strategies producing one value
/// type: `prop_oneof![a, b]` / `prop_oneof![3 => a, 1 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_stream_per_test_name() {
        let mut a = crate::TestRng::for_test("t");
        let mut b = crate::TestRng::for_test("t");
        let s = any::<u64>();
        assert_eq!(s.gen_value(&mut a), s.gen_value(&mut b));
    }

    #[test]
    fn union_respects_weights() {
        let s = prop_oneof![9 => Just(true), 1 => Just(false)];
        let mut rng = crate::TestRng::for_test("weights");
        let hits = (0..10_000).filter(|_| s.gen_value(&mut rng)).count();
        assert!(
            (8_700..9_300).contains(&hits),
            "9:1 union gave {hits}/10000"
        );
    }

    #[test]
    fn collections_honor_size_ranges() {
        let mut rng = crate::TestRng::for_test("sizes");
        let vs = crate::collection::vec(any::<u8>(), 3..6);
        let fixed = crate::collection::vec(any::<u8>(), 4);
        let set = crate::collection::btree_set(any::<u32>(), 1..50);
        for _ in 0..500 {
            let v = vs.gen_value(&mut rng);
            assert!((3..6).contains(&v.len()));
            assert_eq!(fixed.gen_value(&mut rng).len(), 4);
            let s = set.gen_value(&mut rng);
            assert!((1..50).contains(&s.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_generates_in_range(x in 10u64..20, pair in (any::<bool>(), 0u8..4)) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(pair.1 < 4);
            prop_assert_eq!(pair.1 as u64 + x, x + pair.1 as u64);
            prop_assert_ne!(x, 99);
        }
    }
}
