//! Offline shim: the subset of `criterion` this workspace's benches use
//! (see `shims/README.md`). Benchmarks run and print mean per-iteration
//! times as plain text — no statistical analysis, HTML reports, or
//! command-line filtering.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_secs(5),
        }
    }
}

impl Criterion {
    /// Sets the time budget per benchmark (advisory in this shim).
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
        }
    }
}

/// A named collection of benchmark functions.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many measured iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark closure and prints its mean iteration time.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iters: self.sample_size as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let mean = bencher.elapsed.as_secs_f64() / bencher.iters.max(1) as f64;
        println!(
            "  {}/{}: {:>12} per iter ({} iters)",
            self.name,
            id.into_benchmark_id(),
            format_seconds(mean),
            bencher.iters,
        );
        self
    }

    /// Ends the group (printing only; kept for API compatibility).
    pub fn finish(self) {}
}

/// Timing harness passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f` with wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Lets the closure measure `iters` iterations itself and report the
    /// total duration (e.g. virtual time instead of wall time).
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        self.elapsed = f(self.iters);
    }
}

/// A benchmark name with a parameter, e.g. `BenchmarkId::new("load", 50)`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Anything usable as a benchmark label in `bench_function`.
pub trait IntoBenchmarkId {
    /// Renders the label.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

fn format_seconds(s: f64) -> String {
    if s < 1e-6 {
        format!("{:.1} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.2} us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.3} s")
    }
}

/// Declares a benchmark group runner, in either criterion form:
/// `criterion_group!(name, target, ..)` or
/// `criterion_group! { name = n; config = expr; targets = t, .. }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(3);
        group.bench_function("iter", |b| b.iter(|| black_box(2u64 + 2)));
        group.bench_function(BenchmarkId::new("custom", 7), |b| {
            b.iter_custom(Duration::from_nanos)
        });
        group.finish();
    }

    criterion_group! {
        name = smoke;
        config = Criterion::default().measurement_time(Duration::from_millis(1));
        targets = sample_bench
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        smoke();
    }
}
