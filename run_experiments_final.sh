#!/bin/bash
# Final recorded experiment suite (EXPERIMENTS.md source data).
set -x
cd /root/repo
K=200000
./target/release/fig6 --keys $K                                  2>&1 | tee results/logs/fig6.log
./target/release/sfc_stats --keys $K --ops 50000                 2>&1 | tee results/logs/sfc_stats.log
./target/release/whatif_cxl --keys $K --ops 1500 --workers 24    2>&1 | tee results/logs/whatif_cxl.log
./target/release/fig4 --keys $K --ops 1500 --workers 96          2>&1 | tee results/logs/fig4.log
./target/release/fig5 --keys $K --total-ops 36000                2>&1 | tee results/logs/fig5.log
echo FINAL-SUITE-DONE
