//! Failure injection: corrupt and tear on-MN state directly and verify
//! the client-side defenses (checksums, status words, suffix checks)
//! respond as designed.

use art_core::hash::prefix_hash64;
use art_core::layout::NodeStatus;
use integration_tests::{find_leaf_ptr, small_cluster as cluster};
use sphinx::{SphinxConfig, SphinxError, SphinxIndex};

#[test]
fn torn_leaf_write_is_detected_never_served() {
    let c = cluster();
    let index = SphinxIndex::create(&c, SphinxConfig::small()).unwrap();
    let mut client = index.client(0).unwrap();
    client
        .insert(b"victim", b"payload-payload-payload")
        .unwrap();
    let ptr = find_leaf_ptr(&c, b"victim", b"payload-payload-payload");

    // Tear the value bytes behind the checksum's back (what a reader of a
    // half-finished in-place update would observe on real RDMA).
    let mn = c.mn(ptr.mn_id()).unwrap();
    let mut original = vec![0u8; 4];
    mn.read_bytes(ptr.offset() + 20, &mut original).unwrap();
    mn.write_bytes(ptr.offset() + 20, &[0xEE; 4]).unwrap();

    // The read path must NOT return the torn value. (A real tear is
    // transient — the writer's WRITE completes — so the reader retries;
    // with a *permanently* torn leaf it exhausts its retry budget, which
    // is the correct refusal behaviour.)
    let got = client.get(b"victim");
    assert!(
        matches!(got, Err(SphinxError::RetriesExhausted { .. })),
        "torn leaf must never be served: {got:?}"
    );

    // The writer's in-flight write "completes" (bytes restored): reads
    // immediately recover — no state was poisoned by the failed attempts.
    mn.write_bytes(ptr.offset() + 20, &original).unwrap();
    assert_eq!(
        client.get(b"victim").unwrap().as_deref(),
        Some(&b"payload-payload-payload"[..])
    );
}

#[test]
fn invalid_status_blocks_reads_until_slot_swap() {
    let c = cluster();
    let index = SphinxIndex::create(&c, SphinxConfig::small()).unwrap();
    let mut client = index.client(0).unwrap();
    client.insert(b"tomb", b"old-value").unwrap();
    let ptr = find_leaf_ptr(&c, b"tomb", b"old-value");

    // Set the leaf's status byte to Invalid (what a deleter does first).
    let mn = c.mn(ptr.mn_id()).unwrap();
    let word0 = mn.load_u64(ptr.offset()).unwrap();
    mn.store_u64(ptr.offset(), (word0 & !0xFF) | NodeStatus::Invalid as u64)
        .unwrap();

    // Readers treat it as deleted.
    assert_eq!(client.get(b"tomb").unwrap(), None);
    // An insert over the tombstone swaps in a fresh leaf.
    client.insert(b"tomb", b"new-value").unwrap();
    assert_eq!(
        client.get(b"tomb").unwrap().as_deref(),
        Some(&b"new-value"[..])
    );
}

#[test]
fn bogus_hash_entry_is_rejected_by_validation() {
    // A hash entry whose fingerprint matches but whose referenced node
    // does not (the filter-cache false-positive path of §III-B) must be
    // filtered by the prefix-hash/length validation, not followed blindly.
    let c = cluster();
    let index = SphinxIndex::create(&c, SphinxConfig::small()).unwrap();
    let mut client = index.client(0).unwrap();
    for word in ["alpha", "alien", "alloy"] {
        client.insert(word.as_bytes(), b"v").unwrap();
    }

    // Locate the real inner node for "al" through the INHT.
    let h_al = prefix_hash64(b"al");
    let mut dm = c.client(0);
    let mn_al = c.place(h_al) as usize;
    let mut table = race_hash::RaceTable::open(&mut dm, index.inht_metas()[mn_al]).unwrap();
    let found = table.search(&mut dm, h_al).unwrap();
    let al_entry = found
        .iter()
        .filter_map(|e| art_core::layout::HashEntry::decode(e.word))
        .find(|he| he.fp == art_core::hash::fp12(b"al"))
        .expect("inner node 'al' registered");

    // Forge an entry for prefix "zz" (which has NO inner node) pointing at
    // the "al" node, with "zz"'s fingerprint — exactly what a double
    // fp-collision would present to the client.
    let h_zz = prefix_hash64(b"zz");
    let mn_zz = c.place(h_zz) as usize;
    let forged = art_core::layout::HashEntry {
        fp: art_core::hash::fp12(b"zz"),
        kind: al_entry.kind,
        addr: al_entry.addr,
    };
    let mut table_zz = race_hash::RaceTable::open(&mut dm, index.inht_metas()[mn_zz]).unwrap();
    table_zz
        .insert(&mut dm, h_zz, forged.encode(), |_c, _w| Ok(h_zz))
        .unwrap();
    // Teach the filter the forged prefix so lookups actually try it.
    client.filter_handle().insert(b"zz");

    // Lookups under the forged prefix must not be misrouted into the 'al'
    // subtree: validation rejects the node (prefix hash mismatch) and the
    // client falls back to shorter prefixes, answering correctly.
    assert_eq!(client.get(b"zzz").unwrap(), None);
    assert_eq!(client.get(b"zz").unwrap(), None);
    // And the real data is untouched.
    assert_eq!(client.get(b"alpha").unwrap().as_deref(), Some(&b"v"[..]));
}
