//! Leak regression for epoch-based reclamation: a delete/re-insert plus
//! grow-heavy churn workload must not ratchet MN memory upward. Before
//! the `reclaim` crate, every out-of-place update, delete unlink, and
//! type switch leaked its dead region, so exactly this workload grew
//! without bound; with reclamation wired through, post-quiescence
//! `live_bytes` must return to within a small factor of the post-preload
//! baseline.

use bench_harness::systems::{System, SystemHandle, WorkerClient};
use ycsb::KeySpace;

const KEYS: u64 = 384;
const TEMP_KEYS: u64 = 128;
const ROUNDS: usize = 5;

/// Round-robin scans across all workers, then drain each one's limbo
/// list. A single worker cannot quiesce alone: its frees are gated on
/// every *other* worker having refreshed its epoch slot, which only
/// happens when that worker scans.
fn quiesce_all(workers: &mut [WorkerClient]) {
    for _ in 0..8 {
        for w in workers.iter_mut() {
            w.reclaim_scan();
        }
    }
    for w in workers.iter_mut() {
        assert!(w.reclaim_quiesce(16), "limbo list failed to drain");
    }
}

fn live_bytes(handle: &SystemHandle) -> u64 {
    handle.cluster().total_live_bytes()
}

fn churn_one_system(system: System) {
    let handle = system.build(128 << 20, Some(1 << 20));
    let mut workers = vec![handle.worker(0), handle.worker(1)];

    // Preload with small values, then settle: the baseline includes
    // whatever the preload's own type switches retired.
    for i in 0..KEYS {
        workers[0].insert(&KeySpace::U64.key(i), &[0xAB; 16]);
    }
    quiesce_all(&mut workers);
    let baseline = live_bytes(&handle);
    assert!(baseline > 0);

    for round in 0..ROUNDS {
        // Delete/re-insert churn: every unlink retires the old leaf, and
        // alternating value sizes force out-of-place re-insertion (a
        // fresh leaf region per flip) on the systems with variable-size
        // leaves. Split across the two workers so frees are genuinely
        // epoch-gated on the other client.
        let grow = round % 2 == 0;
        let value = vec![0xCD; if grow { 56 } else { 16 }];
        for i in 0..KEYS {
            let key = KeySpace::U64.key(i);
            let w = &mut workers[(i % 2) as usize];
            w.remove(&key);
            w.insert(&key, &value);
        }
        // Grow-heavy slice: a burst of temporary keys splits nodes and
        // forces type switches (retiring the smaller originals), then
        // their deletion retires the burst's leaves. The same temp keys
        // every round, so legitimate structural growth saturates after
        // the first round instead of masking a leak.
        for i in 0..TEMP_KEYS {
            workers[1].insert(&KeySpace::U64.key(KEYS + i), &[0xEF; 16]);
        }
        for i in 0..TEMP_KEYS {
            workers[1].remove(&KeySpace::U64.key(KEYS + i));
        }
    }

    // Final pass back to the preload's value size, so the steady state
    // under comparison matches the baseline's.
    for i in 0..KEYS {
        let key = KeySpace::U64.key(i);
        let w = &mut workers[(i % 2) as usize];
        w.remove(&key);
        w.insert(&key, &[0xAB; 16]);
    }
    quiesce_all(&mut workers);

    let after = live_bytes(&handle);
    assert!(
        after as f64 <= baseline as f64 * 1.5,
        "{}: churn leaked memory: baseline {baseline} B, after {after} B",
        system.label()
    );

    // The reclaimer must have actually done the recovering (not the
    // allocator quietly absorbing the churn). The B+-tree never unlinks
    // nodes — deletes tombstone entries in place — so it alone has
    // nothing to free.
    let mut merged = handle.index_telemetry();
    for w in &workers {
        merged.merge(&w.telemetry());
    }
    if system != System::BpTree {
        assert!(
            merged.counter("reclaim.freed_bytes") > 0,
            "{}: no freed bytes in telemetry",
            system.label()
        );
        assert!(
            merged.counter("mem.reclaimed_bytes") > 0,
            "{}: MN pools saw no reclaimed bytes",
            system.label()
        );
        assert_eq!(
            merged.counter("reclaim.limbo_depth"),
            0,
            "{}: limbo entries left after quiescence",
            system.label()
        );
    }
    // Keys must have survived all that maintenance.
    for i in 0..KEYS {
        assert_eq!(
            workers[0].get(&KeySpace::U64.key(i)).as_deref(),
            Some(&[0xAB; 16][..]),
            "{}: key {i} lost during churn",
            system.label()
        );
    }
}

#[test]
fn churn_does_not_leak_sphinx() {
    churn_one_system(System::Sphinx);
}

#[test]
fn churn_does_not_leak_art() {
    churn_one_system(System::Art);
}

#[test]
fn churn_does_not_leak_bptree() {
    churn_one_system(System::BpTree);
}
