//! Property tests: the full Sphinx index (hash table, filter cache,
//! remote ART, checksummed leaves — the whole stack over the simulated
//! cluster) agrees with `BTreeMap` on arbitrary operation sequences.

use std::collections::BTreeMap;

use proptest::prelude::*;

use dm_sim::{ClusterConfig, DmCluster};
use sphinx::{CacheMode, SphinxConfig, SphinxIndex};

#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<u8>, Vec<u8>),
    Update(Vec<u8>, Vec<u8>),
    Remove(Vec<u8>),
    Get(Vec<u8>),
    Scan(Vec<u8>, Vec<u8>),
    MultiGet(Vec<Vec<u8>>),
    ScanN(Vec<u8>, usize),
    ScanIter(Vec<u8>, usize),
}

fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(prop_oneof![3 => 0u8..4, 1 => any::<u8>()], 0..8)
}

fn val_strategy() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..80)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (key_strategy(), val_strategy()).prop_map(|(k, v)| Op::Insert(k, v)),
        1 => (key_strategy(), val_strategy()).prop_map(|(k, v)| Op::Update(k, v)),
        1 => key_strategy().prop_map(Op::Remove),
        2 => key_strategy().prop_map(Op::Get),
        1 => (key_strategy(), key_strategy()).prop_map(|(a, b)| Op::Scan(a, b)),
        1 => proptest::collection::vec(key_strategy(), 1..8).prop_map(Op::MultiGet),
        1 => (key_strategy(), 0usize..12).prop_map(|(k, n)| Op::ScanN(k, n)),
        1 => (key_strategy(), 1usize..10).prop_map(|(k, n)| Op::ScanIter(k, n)),
    ]
}

fn check_mode(mode: CacheMode, ops: &[Op]) -> Result<(), TestCaseError> {
    let cluster = DmCluster::new(ClusterConfig {
        mn_capacity: 32 << 20,
        ..ClusterConfig::default()
    });
    let config = SphinxConfig {
        mode,
        ..SphinxConfig::small()
    };
    let index = SphinxIndex::create(&cluster, config).expect("create");
    let mut client = index.client(0).expect("client");
    let mut oracle: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();

    for op in ops {
        match op {
            Op::Insert(k, v) => {
                client.insert(k, v).expect("insert");
                oracle.insert(k.clone(), v.clone());
            }
            Op::Update(k, v) => {
                let did = client.update(k, v).expect("update");
                prop_assert_eq!(did, oracle.contains_key(k));
                if did {
                    oracle.insert(k.clone(), v.clone());
                }
            }
            Op::Remove(k) => {
                let did = client.remove(k).expect("remove");
                prop_assert_eq!(did, oracle.remove(k).is_some());
            }
            Op::Get(k) => {
                prop_assert_eq!(client.get(k).expect("get"), oracle.get(k).cloned());
            }
            Op::Scan(a, b) => {
                let (low, high) = if a <= b { (a, b) } else { (b, a) };
                let got = client.scan(low, high).expect("scan");
                let want: Vec<(Vec<u8>, Vec<u8>)> = oracle
                    .range(low.clone()..=high.clone())
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                prop_assert_eq!(got, want);
            }
            Op::MultiGet(keys) => {
                let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
                let got = client.multi_get(&refs).expect("multi_get");
                for (k, g) in refs.iter().zip(got) {
                    prop_assert_eq!(g, oracle.get(*k).cloned(), "multi_get {:?}", k);
                }
            }
            Op::ScanN(low, n) => {
                let got = client.scan_n(low, *n).expect("scan_n");
                let want: Vec<(Vec<u8>, Vec<u8>)> = oracle
                    .range(low.clone()..)
                    .take(*n)
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                prop_assert_eq!(got, want);
            }
            Op::ScanIter(low, n) => {
                let got: Vec<(Vec<u8>, Vec<u8>)> = client
                    .scan_iter(low)
                    .with_page_size(3) // force paging
                    .take(*n)
                    .map(|r| r.expect("scan_iter"))
                    .collect();
                let want: Vec<(Vec<u8>, Vec<u8>)> = oracle
                    .range(low.clone()..)
                    .take(*n)
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                prop_assert_eq!(got, want);
            }
        }
    }
    // Closing sweep.
    for (k, v) in &oracle {
        prop_assert_eq!(client.get(k).expect("get"), Some(v.clone()));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sphinx_filter_cache_matches_btreemap(
        ops in proptest::collection::vec(op_strategy(), 1..120),
    ) {
        check_mode(CacheMode::FilterCache, &ops)?;
    }

    #[test]
    fn sphinx_inht_only_matches_btreemap(
        ops in proptest::collection::vec(op_strategy(), 1..60),
    ) {
        check_mode(CacheMode::InhtOnly, &ops)?;
    }
}
