//! Concurrency torture across the full stack: many threads, overlapping
//! key ranges, all operation types. Every run records its operations
//! through the [`lincheck::HistoryRecorder`] and is verified by the
//! per-key linearizability checker — the stronger replacement for the old
//! hand-rolled "value was written by someone" invariant, which is still
//! checked in-flight as a cheap early tripwire.

use std::collections::HashSet;
use std::sync::Arc;

use bench_harness::{apply_op, systems::System};
use integration_tests::{assert_tagged_intact, tagged_value};
use lincheck::{check_history, CheckConfig, HistoryRecorder, Op, Ret};
use ycsb::KeySpace;

fn torture(system: System) {
    let handle = system.build(256 << 20, Some(64 << 10));
    let keys = 60u64;
    let threads = 4u8;
    let rounds = 120u32;
    let rec = Arc::new(HistoryRecorder::new());

    std::thread::scope(|s| {
        for t in 0..threads {
            let handle = handle.clone();
            let rec = Arc::clone(&rec);
            s.spawn(move || {
                let mut w = handle.worker((t % 3) as u16);
                for r in 0..rounds {
                    let idx = ((t as u64) * 7 + (r as u64) * 13) % keys;
                    let key = KeySpace::U64.key(idx);
                    let op = match (t as u32 + r) % 6 {
                        0 | 1 => Op::Insert {
                            key,
                            value: tagged_value(t, r),
                        },
                        2 => Op::Update {
                            key,
                            value: tagged_value(t, r),
                        },
                        3 => Op::Get { key },
                        4 => Op::Delete { key },
                        // u64::MAX as 8 bytes: an inclusive upper bound
                        // every system (including the fixed-width B+-tree)
                        // accepts.
                        _ => Op::Scan {
                            low: key,
                            high: vec![0xFF; 8],
                        },
                    };
                    let id = rec.invoke_now(t as u32, op.clone());
                    let ret = apply_op(&mut w, &op);
                    // Cheap in-flight tripwire (the checker does the full
                    // verification after the run).
                    match &ret {
                        Ret::Got(Some(v)) => assert_tagged_intact(v, system.label()),
                        Ret::Scanned(pairs) => {
                            assert!(pairs.len() <= keys as usize + threads as usize);
                            for (_, v) in pairs {
                                assert_tagged_intact(v, system.label());
                            }
                        }
                        _ => {}
                    }
                    rec.respond_now(id, ret);
                }
            });
        }
    });

    // Post-mortem: every surviving key readable, values well-formed and
    // unique per key.
    let mut w = handle.worker(0);
    let mut seen = HashSet::new();
    for idx in 0..keys {
        let key = KeySpace::U64.key(idx);
        if let Some(v) = w.get(&key) {
            assert_tagged_intact(&v, system.label());
            assert!(seen.insert(key));
        }
    }

    // The recorded history must admit a linearization order per key.
    let history = Arc::try_unwrap(rec).expect("recorder shared").finish();
    assert!(history.len() >= (threads as usize) * (rounds as usize));
    let outcome = check_history(&history, &CheckConfig::default());
    assert!(outcome.is_linearizable(), "{}: {outcome:?}", system.label());
}

#[test]
fn sphinx_survives_torture() {
    torture(System::Sphinx);
}

#[test]
fn smart_survives_torture() {
    torture(System::Smart);
}

#[test]
fn art_survives_torture() {
    torture(System::Art);
}

#[test]
fn bptree_survives_torture() {
    torture(System::BpTree);
}

/// Deletions racing inserts on the same keys: keys must always be either
/// fully present (readable, intact) or fully absent — and the recorded
/// delete/insert/get history must linearize.
#[test]
fn delete_insert_races_leave_no_zombies() {
    let handle = System::Sphinx.build(128 << 20, Some(64 << 10));
    let rec = Arc::new(HistoryRecorder::new());
    {
        let mut w = handle.worker(0);
        for i in 0..40u64 {
            let op = Op::Insert {
                key: KeySpace::U64.key(i),
                value: tagged_value(9, 0),
            };
            let id = rec.invoke_now(3, op.clone());
            let ret = apply_op(&mut w, &op);
            rec.respond_now(id, ret);
        }
    }
    std::thread::scope(|s| {
        // Deleter — through the uniform facade (WorkerClient::remove).
        let h = handle.clone();
        let rec_d = Arc::clone(&rec);
        s.spawn(move || {
            let mut w = h.worker(1);
            for r in 0..3 {
                for i in 0..40u64 {
                    let op = Op::Delete {
                        key: KeySpace::U64.key((i + r) % 40),
                    };
                    let id = rec_d.invoke_now(0, op.clone());
                    let ret = apply_op(&mut w, &op);
                    rec_d.respond_now(id, ret);
                }
            }
        });
        // Reinserter
        let h = handle.clone();
        let rec_i = Arc::clone(&rec);
        s.spawn(move || {
            let mut w = h.worker(2);
            for r in 0..3u32 {
                for i in 0..40u64 {
                    let op = Op::Insert {
                        key: KeySpace::U64.key(i),
                        value: tagged_value(1, r),
                    };
                    let id = rec_i.invoke_now(1, op.clone());
                    let ret = apply_op(&mut w, &op);
                    rec_i.respond_now(id, ret);
                }
            }
        });
        // Reader
        let h = handle.clone();
        let rec_r = Arc::clone(&rec);
        s.spawn(move || {
            let mut w = h.worker(0);
            for _ in 0..300 {
                for i in (0..40u64).step_by(7) {
                    let op = Op::Get {
                        key: KeySpace::U64.key(i),
                    };
                    let id = rec_r.invoke_now(2, op.clone());
                    let ret = apply_op(&mut w, &op);
                    if let Ret::Got(Some(v)) = &ret {
                        assert_tagged_intact(v, "zombie check");
                    }
                    rec_r.respond_now(id, ret);
                }
            }
        });
    });

    let history = Arc::try_unwrap(rec).expect("recorder shared").finish();
    let outcome = check_history(&history, &CheckConfig::default());
    assert!(outcome.is_linearizable(), "{outcome:?}");
}
