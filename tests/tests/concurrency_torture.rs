//! Concurrency torture across the full stack: many threads, overlapping
//! key ranges, all operation types, verified against a per-key linear
//! history invariant (values are always one of the versions some writer
//! actually wrote — no torn data, no resurrection after delete without a
//! subsequent insert).

use bench_harness::systems::System;
use std::collections::HashSet;
use ycsb::KeySpace;

/// Values encode (thread, round) so readers can verify every observed
/// value was genuinely written by someone.
fn tagged_value(thread: u8, round: u32) -> Vec<u8> {
    let mut v = vec![thread; 24];
    v[0..4].copy_from_slice(&round.to_le_bytes());
    v[4] = thread;
    v
}

fn torture(system: System) {
    let handle = system.build(256 << 20, Some(64 << 10));
    let keys = 60u64;
    let threads = 4u8;
    let rounds = 120u32;

    std::thread::scope(|s| {
        for t in 0..threads {
            let handle = handle.clone();
            s.spawn(move || {
                let mut w = handle.worker((t % 3) as u16);
                for r in 0..rounds {
                    let idx = ((t as u64) * 7 + (r as u64) * 13) % keys;
                    let key = KeySpace::U64.key(idx);
                    match (t as u32 + r) % 5 {
                        0 | 1 => w.insert(&key, &tagged_value(t, r)),
                        2 => {
                            let _ = w.update(&key, &tagged_value(t, r));
                        }
                        3 => {
                            if let Some(v) = w.get(&key) {
                                // Value must be internally consistent: one
                                // writer's tag throughout.
                                assert_eq!(v.len(), 24, "{}", system.label());
                                let tag = v[4];
                                assert!(
                                    v[5..].iter().all(|&b| b == tag),
                                    "{}: torn value {v:?}",
                                    system.label()
                                );
                            }
                        }
                        _ => {
                            // Scans must return well-formed unique keys.
                            let lo = KeySpace::U64.key(idx);
                            let hi = [0xFFu8; 9];
                            let n = w.scan(&lo, &hi);
                            assert!(n <= keys as usize + threads as usize);
                        }
                    }
                }
            });
        }
    });

    // Post-mortem: every surviving key readable, values well-formed and
    // unique per key.
    let mut w = handle.worker(0);
    let mut seen = HashSet::new();
    for idx in 0..keys {
        let key = KeySpace::U64.key(idx);
        if let Some(v) = w.get(&key) {
            assert_eq!(v.len(), 24);
            let tag = v[4];
            assert!(v[5..].iter().all(|&b| b == tag));
            assert!(seen.insert(key));
        }
    }
}

#[test]
fn sphinx_survives_torture() {
    torture(System::Sphinx);
}

#[test]
fn smart_survives_torture() {
    torture(System::Smart);
}

#[test]
fn art_survives_torture() {
    torture(System::Art);
}

/// Deletions racing inserts on the same keys: keys must always be either
/// fully present (readable, intact) or fully absent.
#[test]
fn delete_insert_races_leave_no_zombies() {
    let handle = System::Sphinx.build(128 << 20, Some(64 << 10));
    {
        let mut w = handle.worker(0);
        for i in 0..40u64 {
            w.insert(&KeySpace::U64.key(i), &tagged_value(9, 0));
        }
    }
    std::thread::scope(|s| {
        // Deleter
        let h = handle.clone();
        s.spawn(move || {
            let SystemWorker::Sphinx(mut c) = unwrap_sphinx(h.worker(1));
            for r in 0..3 {
                for i in 0..40u64 {
                    let _ = c.remove(&KeySpace::U64.key((i + r) % 40)).expect("remove");
                }
            }
        });
        // Reinserter
        let h = handle.clone();
        s.spawn(move || {
            let mut w = h.worker(2);
            for r in 0..3u32 {
                for i in 0..40u64 {
                    w.insert(&KeySpace::U64.key(i), &tagged_value(1, r));
                }
            }
        });
        // Reader
        let h = handle.clone();
        s.spawn(move || {
            let mut w = h.worker(0);
            for _ in 0..300 {
                for i in (0..40u64).step_by(7) {
                    if let Some(v) = w.get(&KeySpace::U64.key(i)) {
                        assert_eq!(v.len(), 24);
                        assert!(v[5..].iter().all(|&b| b == v[4]), "zombie/torn value");
                    }
                }
            }
        });
    });
}

// Small helper so the deleter can use the sphinx-only `remove`.
enum SystemWorker {
    Sphinx(Box<sphinx::SphinxClient>),
}

fn unwrap_sphinx(w: bench_harness::systems::WorkerClient) -> SystemWorker {
    match w {
        bench_harness::systems::WorkerClient::Sphinx(c) => SystemWorker::Sphinx(c),
        _ => unreachable!("expected a sphinx worker"),
    }
}
