//! Transport-level fault injection: torn 8-byte words slipped into leaf
//! READ completions (via [`dm_sim::FaultHook`], the single choke point
//! every verb batch passes through) must always be caught by the
//! checksum validation in `node_engine::read_validated_leaf` — for the
//! Sphinx read path and for the baseline (plain-ART) read path alike.
//!
//! The corruption is transient, like a real torn read: the remote memory
//! is intact and only every other delivered buffer is damaged, so one
//! retry observes a clean image. The property is therefore total
//! correctness under injection plus evidence (`checksum_retries > 0`)
//! that the recovery machinery actually fired.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use art_core::layout::LeafNode;
use baselines::{BaselineConfig, BaselineIndex};
use dm_sim::{ClusterConfig, DmCluster, FaultHook, RemotePtr};
use sphinx::{SphinxConfig, SphinxIndex};

/// Tears one checksum-covered 8-byte word in every other buffer that
/// parses as a complete leaf. Buckets, inner nodes, and control words
/// don't decode as leaves and pass through untouched, so the hook models
/// exactly the hazard the leaf checksum exists for.
#[derive(Debug, Default)]
struct TornLeafWord {
    reads: AtomicU64,
    torn: AtomicU64,
}

impl FaultHook for TornLeafWord {
    fn corrupt_read(&self, _ptr: RemotePtr, data: &mut [u8]) {
        if data.len() < 24 || LeafNode::decode(data).is_err() {
            return;
        }
        if self.reads.fetch_add(1, Ordering::Relaxed).is_multiple_of(2) {
            // Word at offset 16 sits in the key/value region of any
            // non-empty leaf — squarely under the CRC.
            for b in &mut data[16..24] {
                *b ^= 0xA5;
            }
            self.torn.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn cluster() -> DmCluster {
    DmCluster::new(ClusterConfig {
        mn_capacity: 64 << 20,
        ..Default::default()
    })
}

fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(prop_oneof![3 => 0u8..6, 1 => any::<u8>()], 1..10)
}

fn kv_set_strategy() -> impl Strategy<Value = Vec<(Vec<u8>, Vec<u8>)>> {
    proptest::collection::vec(
        (
            key_strategy(),
            proptest::collection::vec(any::<u8>(), 1..48),
        ),
        1..24,
    )
}

fn dedup(mut kvs: Vec<(Vec<u8>, Vec<u8>)>) -> Vec<(Vec<u8>, Vec<u8>)> {
    kvs.sort();
    kvs.dedup_by(|a, b| a.0 == b.0);
    kvs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sphinx_reads_survive_torn_leaf_words(kvs in kv_set_strategy()) {
        let kvs = dedup(kvs);
        let c = cluster();
        let index = SphinxIndex::create(&c, SphinxConfig::small()).expect("create");
        let mut client = index.client(0).expect("client");
        for (k, v) in &kvs {
            client.insert(k, v).expect("insert");
        }

        let hook = Arc::new(TornLeafWord::default());
        c.set_fault_hook(Some(hook.clone()));
        for (k, v) in &kvs {
            prop_assert_eq!(
                client.get(k).expect("get under injection"),
                Some(v.clone()),
                "torn word served for key {:?}", k
            );
        }
        // Writes re-read leaves too; they must also self-heal.
        for (k, _) in &kvs {
            client.insert(k, b"rewritten").expect("insert under injection");
        }
        for (k, _) in &kvs {
            prop_assert_eq!(
                client.get(k).expect("get after rewrite"),
                Some(b"rewritten".to_vec())
            );
        }
        c.set_fault_hook(None);

        prop_assert!(hook.torn.load(Ordering::Relaxed) > 0, "hook never fired");
        prop_assert!(
            client.op_stats().checksum_retries > 0,
            "recovery path never exercised despite {} torn reads",
            hook.torn.load(Ordering::Relaxed)
        );
        // The cluster counts injections at the transport choke point:
        // every corruption the hook performed must be accounted for.
        prop_assert_eq!(
            c.fault_injections(),
            hook.torn.load(Ordering::Relaxed),
            "cluster-side injection count disagrees with the hook"
        );
        // And the telemetry registry surfaces the recoveries.
        prop_assert_eq!(
            client.telemetry().counter("sphinx.checksum_retries"),
            client.op_stats().checksum_retries,
            "telemetry must mirror the checksum-retry counter"
        );
    }

    #[test]
    fn baseline_reads_survive_torn_leaf_words(kvs in kv_set_strategy()) {
        let kvs = dedup(kvs);
        let c = cluster();
        let index = BaselineIndex::create(&c, BaselineConfig::art()).expect("create");
        let mut client = index.client(0).expect("client");
        for (k, v) in &kvs {
            client.insert(k, v).expect("insert");
        }

        let hook = Arc::new(TornLeafWord::default());
        c.set_fault_hook(Some(hook.clone()));
        for (k, v) in &kvs {
            prop_assert_eq!(
                client.get(k).expect("get under injection"),
                Some(v.clone()),
                "torn word served for key {:?}", k
            );
        }
        c.set_fault_hook(None);

        prop_assert!(hook.torn.load(Ordering::Relaxed) > 0, "hook never fired");
        prop_assert!(
            client.op_stats().checksum_retries > 0,
            "recovery path never exercised despite {} torn reads",
            hook.torn.load(Ordering::Relaxed)
        );
        prop_assert_eq!(
            c.fault_injections(),
            hook.torn.load(Ordering::Relaxed),
            "cluster-side injection count disagrees with the hook"
        );
        prop_assert_eq!(
            client.telemetry().counter("baseline.checksum_retries"),
            client.op_stats().checksum_retries,
            "telemetry must mirror the checksum-retry counter"
        );
    }
}
