//! Property tests: the local ART agrees with `BTreeMap` on arbitrary
//! operation sequences, and the on-MN codecs round-trip arbitrary inputs.

use std::collections::BTreeMap;

use proptest::prelude::*;

use art_core::layout::{InnerNode, LeafNode, NodeStatus, Slot};
use art_core::{LocalArt, NodeKind};

#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<u8>, u32),
    Remove(Vec<u8>),
    Get(Vec<u8>),
}

fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    // Small alphabet and lengths force deep sharing, path compression,
    // prefix keys and node splits.
    proptest::collection::vec(
        prop_oneof![Just(b'a'), Just(b'b'), Just(b'c'), any::<u8>()],
        0..10,
    )
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (key_strategy(), any::<u32>()).prop_map(|(k, v)| Op::Insert(k, v)),
        key_strategy().prop_map(Op::Remove),
        key_strategy().prop_map(Op::Get),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn local_art_matches_btreemap(ops in proptest::collection::vec(op_strategy(), 1..300)) {
        let mut art = LocalArt::new();
        let mut oracle: BTreeMap<Vec<u8>, u32> = BTreeMap::new();
        for op in &ops {
            match op {
                Op::Insert(k, v) => {
                    prop_assert_eq!(art.insert(k.clone(), *v), oracle.insert(k.clone(), *v));
                }
                Op::Remove(k) => {
                    prop_assert_eq!(art.remove(k), oracle.remove(k));
                }
                Op::Get(k) => {
                    prop_assert_eq!(art.get(k), oracle.get(k));
                }
            }
            prop_assert_eq!(art.len(), oracle.len());
        }
        // Full ordered iteration must agree.
        let got: Vec<_> = art.iter().map(|(k, v)| (k.to_vec(), *v)).collect();
        let want: Vec<_> = oracle.iter().map(|(k, v)| (k.clone(), *v)).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn local_art_range_matches_btreemap(
        keys in proptest::collection::btree_set(key_strategy(), 0..80),
        low in key_strategy(),
        high in key_strategy(),
    ) {
        let (low, high) = if low <= high { (low, high) } else { (high, low) };
        let mut art = LocalArt::new();
        for (i, k) in keys.iter().enumerate() {
            art.insert(k.clone(), i);
        }
        let got: Vec<Vec<u8>> = art.range(&low, &high).map(|(k, _)| k.to_vec()).collect();
        let want: Vec<Vec<u8>> = keys
            .iter()
            .filter(|k| **k >= low && **k <= high)
            .cloned()
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn leaf_codec_roundtrips(
        key in proptest::collection::vec(any::<u8>(), 0..64),
        value in proptest::collection::vec(any::<u8>(), 0..300),
        version in any::<u32>(),
        extra_units in 0u8..3,
    ) {
        let mut leaf = LeafNode::new(key, value);
        leaf.version = version;
        let units = leaf.len_units() + extra_units;
        leaf.set_len_units(units);
        let bytes = leaf.encode();
        prop_assert_eq!(bytes.len(), units as usize * 64);
        let decoded = LeafNode::decode(&bytes).unwrap();
        prop_assert_eq!(&decoded, &leaf);
        // Any single corrupted payload byte must be detected.
        if bytes.len() > 17 {
            let mut corrupt = bytes.clone();
            corrupt[17] ^= 0x5A;
            if corrupt != bytes {
                prop_assert!(LeafNode::decode(&corrupt).is_err());
            }
        }
    }

    #[test]
    fn inner_codec_roundtrips(
        prefix in proptest::collection::vec(any::<u8>(), 0..20),
        children in proptest::collection::btree_set(any::<u8>(), 0..40),
        kinds in proptest::collection::vec(0u8..4, 40),
    ) {
        let kind = match children.len() {
            0..=4 => NodeKind::Node4,
            5..=16 => NodeKind::Node16,
            _ => NodeKind::Node48,
        };
        let mut node = InnerNode::new(kind, &prefix);
        for (i, byte) in children.iter().enumerate() {
            let child_kind = match kinds[i] {
                0 => NodeKind::Node4,
                1 => NodeKind::Node16,
                2 => NodeKind::Node48,
                _ => NodeKind::Node256,
            };
            node.set_child(Slot::inner(*byte, child_kind, dm_sim::RemotePtr::new(1, 64 + 64 * i as u64)));
        }
        let decoded = InnerNode::decode(&node.encode()).unwrap();
        prop_assert_eq!(&decoded, &node);
        prop_assert_eq!(decoded.header.status, NodeStatus::Idle);
        for byte in &children {
            prop_assert!(decoded.find_child(*byte).is_some());
        }
    }

    #[test]
    fn grown_node_preserves_all_children(
        children in proptest::collection::btree_set(any::<u8>(), 1..48),
    ) {
        let kind = match children.len() {
            0..=4 => NodeKind::Node4,
            5..=16 => NodeKind::Node16,
            _ => NodeKind::Node48,
        };
        let mut node = InnerNode::new(kind, b"p");
        for byte in &children {
            node.set_child(Slot::leaf(*byte, dm_sim::RemotePtr::new(0, 64)));
        }
        let grown = node.grow();
        prop_assert_eq!(grown.child_count(), children.len());
        for byte in &children {
            prop_assert!(grown.find_child(*byte).is_some());
        }
        prop_assert_eq!(grown.header.version, node.header.version.wrapping_add(1));
    }
}
