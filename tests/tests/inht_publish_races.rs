//! Regression for the lost INHT publish race: a node-type switch swings
//! the parent pointer (making the grown node reachable) *before* it
//! publishes the new hash entry, so a second writer can grow the same
//! logical node again and lose its own publish CAS — historically leaving
//! the table naming a retired node while the live node had no entry at
//! all (`verify()`: "no hash entry for prefix"). The same window exists
//! between a split linking a brand-new inner node and its first insert
//! into the table.
//!
//! This storm is engineered to maximise that window: every thread inserts
//! children of the *same* small set of inner nodes, so each node's
//! Node4 → Node16 → Node48 → Node256 growth chain is contended by all
//! threads at once. After the storm settles, the full structural audit
//! must be clean.

use bench_harness::systems::{System, SystemHandle};

#[test]
fn concurrent_type_switches_keep_inht_consistent() {
    let handle = System::Sphinx.build(256 << 20, Some(64 << 10));
    let threads = 4u8;
    let prefixes = 24u8;
    std::thread::scope(|s| {
        for t in 0..threads {
            let handle = handle.clone();
            s.spawn(move || {
                let mut w = handle.worker((t % 3) as u16);
                // Interleave prefixes so every node's growth chain stays
                // contended for the whole run, rather than each prefix
                // being finished by one thread before the next arrives.
                for round in 0..64u8 {
                    for p in 0..prefixes {
                        // key = shared prefix | child byte | thread tag.
                        // 64 children per prefix × 4 threads drives each
                        // prefix node through every type switch while all
                        // threads race inserts into it.
                        let key = [b'r', b'a', b'c', b'e', p, round * 4 + (t % 4), t];
                        w.insert(&key, &[t; 16]);
                    }
                }
            });
        }
    });
    let SystemHandle::Sphinx(index) = &handle else {
        unreachable!()
    };
    let report = index.verify().expect("verify");
    assert!(report.is_clean(), "violations: {:#?}", report.problems);
    // Sanity: the storm actually built the contended fan-out.
    assert!(
        report.inner_nodes > prefixes as usize,
        "{}",
        report.inner_nodes
    );
    assert_eq!(
        report.leaves,
        threads as usize * prefixes as usize * 64,
        "lost inserts"
    );
}
