//! Property tests: both baseline indexes (naive ART-on-DM and SMART with
//! its node cache and preallocation) agree with `BTreeMap` on arbitrary
//! operation sequences — including scans, and including the cache-staleness
//! healing paths (the SMART run exercises a deliberately tiny cache).

use std::collections::BTreeMap;

use proptest::prelude::*;

use baselines::{BaselineConfig, BaselineIndex};
use dm_sim::{ClusterConfig, DmCluster};

#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<u8>, Vec<u8>),
    Update(Vec<u8>, Vec<u8>),
    Remove(Vec<u8>),
    Get(Vec<u8>),
    Scan(Vec<u8>, Vec<u8>),
}

fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(prop_oneof![3 => 0u8..4, 1 => any::<u8>()], 0..8)
}

fn val_strategy() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..60)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (key_strategy(), val_strategy()).prop_map(|(k, v)| Op::Insert(k, v)),
        1 => (key_strategy(), val_strategy()).prop_map(|(k, v)| Op::Update(k, v)),
        1 => key_strategy().prop_map(Op::Remove),
        2 => key_strategy().prop_map(Op::Get),
        1 => (key_strategy(), key_strategy()).prop_map(|(a, b)| Op::Scan(a, b)),
    ]
}

fn check(config: BaselineConfig, ops: &[Op]) -> Result<(), TestCaseError> {
    let cluster = DmCluster::new(ClusterConfig {
        mn_capacity: 32 << 20,
        ..ClusterConfig::default()
    });
    let index = BaselineIndex::create(&cluster, config).expect("create");
    let mut client = index.client(0).expect("client");
    let mut oracle: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    for op in ops {
        match op {
            Op::Insert(k, v) => {
                client.insert(k, v).expect("insert");
                oracle.insert(k.clone(), v.clone());
            }
            Op::Update(k, v) => {
                let did = client.update(k, v).expect("update");
                prop_assert_eq!(did, oracle.contains_key(k));
                if did {
                    oracle.insert(k.clone(), v.clone());
                }
            }
            Op::Remove(k) => {
                let did = client.remove(k).expect("remove");
                prop_assert_eq!(did, oracle.remove(k).is_some());
            }
            Op::Get(k) => {
                prop_assert_eq!(client.get(k).expect("get"), oracle.get(k).cloned());
            }
            Op::Scan(a, b) => {
                let (low, high) = if a <= b { (a, b) } else { (b, a) };
                let got = client.scan(low, high).expect("scan");
                let want: Vec<(Vec<u8>, Vec<u8>)> = oracle
                    .range(low.clone()..=high.clone())
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                prop_assert_eq!(got, want);
            }
        }
    }
    for (k, v) in &oracle {
        prop_assert_eq!(client.get(k).expect("get"), Some(v.clone()));
    }
    // The structure must also audit clean.
    let report = index.verify().expect("verify");
    prop_assert!(report.is_clean(), "{:?}", report.problems);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn art_baseline_matches_btreemap(
        ops in proptest::collection::vec(op_strategy(), 1..100),
    ) {
        check(BaselineConfig::art(), &ops)?;
    }

    #[test]
    fn smart_baseline_matches_btreemap_with_tiny_cache(
        ops in proptest::collection::vec(op_strategy(), 1..100),
    ) {
        // A cache big enough for only ~3 nodes maximizes staleness churn.
        check(BaselineConfig::smart(8 << 10), &ops)?;
    }
}
