//! Property tests for the substrates: the DM heap against a plain byte
//! array, the RACE table against a multimap oracle, and the cuckoo filter
//! membership invariants.

use proptest::prelude::*;

use dm_sim::{ClusterConfig, DmCluster};
use race_hash::{RaceTable, TableConfig};

#[derive(Debug, Clone)]
enum HeapOp {
    Write { offset: u16, data: Vec<u8> },
    Read { offset: u16, len: u8 },
    StoreWord { word_idx: u8, value: u64 },
    Faa { word_idx: u8, delta: u32 },
}

fn heap_op() -> impl Strategy<Value = HeapOp> {
    prop_oneof![
        (0u16..3000, proptest::collection::vec(any::<u8>(), 0..100))
            .prop_map(|(offset, data)| HeapOp::Write { offset, data }),
        (0u16..3000, any::<u8>()).prop_map(|(offset, len)| HeapOp::Read { offset, len }),
        (0u8..200, any::<u64>())
            .prop_map(|(word_idx, value)| HeapOp::StoreWord { word_idx, value }),
        (0u8..200, any::<u32>()).prop_map(|(word_idx, delta)| HeapOp::Faa { word_idx, delta }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Single-threaded, the word-atomic heap must behave exactly like a
    /// byte array.
    #[test]
    fn heap_matches_byte_array(ops in proptest::collection::vec(heap_op(), 1..120)) {
        let cluster = DmCluster::new(ClusterConfig {
            num_mns: 1,
            num_cns: 1,
            mn_capacity: 8192,
            ..Default::default()
        });
        let mn = cluster.mn(0).unwrap();
        let mut model = vec![0u8; 8192];
        for op in &ops {
            match op {
                HeapOp::Write { offset, data } => {
                    let off = *offset as usize;
                    if off + data.len() <= model.len() {
                        mn.write_bytes(off as u64, data).unwrap();
                        model[off..off + data.len()].copy_from_slice(data);
                    } else {
                        prop_assert!(mn.write_bytes(off as u64, data).is_err());
                    }
                }
                HeapOp::Read { offset, len } => {
                    let off = *offset as usize;
                    let len = *len as usize;
                    let mut buf = vec![0u8; len];
                    if off + len <= model.len() {
                        mn.read_bytes(off as u64, &mut buf).unwrap();
                        prop_assert_eq!(&buf, &model[off..off + len]);
                    } else {
                        prop_assert!(mn.read_bytes(off as u64, &mut buf).is_err());
                    }
                }
                HeapOp::StoreWord { word_idx, value } => {
                    let off = *word_idx as usize * 8;
                    mn.store_u64(off as u64, *value).unwrap();
                    model[off..off + 8].copy_from_slice(&value.to_le_bytes());
                }
                HeapOp::Faa { word_idx, delta } => {
                    let off = *word_idx as usize * 8;
                    let before =
                        u64::from_le_bytes(model[off..off + 8].try_into().unwrap());
                    let prev = mn.faa_u64(off as u64, *delta as u64).unwrap();
                    prop_assert_eq!(prev, before);
                    model[off..off + 8]
                        .copy_from_slice(&before.wrapping_add(*delta as u64).to_le_bytes());
                }
            }
        }
    }

    /// The RACE table is a set of (hash, word) pairs under insert/remove,
    /// and search returns exactly the live words for a hash's bucket
    /// (possibly plus same-pair neighbours, never fewer).
    #[test]
    fn race_table_retains_exactly_live_entries(
        seeds in proptest::collection::vec((any::<u16>(), any::<bool>()), 1..150),
    ) {
        let cluster = DmCluster::new(ClusterConfig {
            num_mns: 1,
            num_cns: 1,
            mn_capacity: 64 << 20,
            ..Default::default()
        });
        let mut client = cluster.client(0);
        let meta = RaceTable::create(
            &mut client,
            0,
            &TableConfig { initial_depth: 1, max_depth: 10 },
        )
        .unwrap();
        let mut table = RaceTable::open(&mut client, meta).unwrap();
        let mut live: std::collections::BTreeSet<u64> = Default::default();

        let mix = |x: u64| {
            let mut x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x ^ (x >> 31)
        };
        for (seed, insert) in &seeds {
            let h = mix(*seed as u64);
            let word = (h & ((1 << 42) - 1)) | (1 << 43);
            if *insert {
                table.insert(&mut client, h, word, |_c, w| Ok(w & ((1 << 42) - 1))).unwrap();
                live.insert(h);
            } else {
                let removed = table.remove(&mut client, h, word).unwrap();
                prop_assert_eq!(removed, live.remove(&h));
            }
        }
        for h in &live {
            let word = (*h & ((1 << 42) - 1)) | (1 << 43);
            let found = table.search(&mut client, *h).unwrap();
            prop_assert!(found.iter().any(|e| e.word == word), "lost entry {h:#x}");
        }
    }

    /// Cuckoo filter: resident entries are always reported present; a
    /// removed entry (inserted exactly once) stops being reported unless a
    /// colliding twin exists.
    #[test]
    fn filter_has_no_false_negatives(
        items in proptest::collection::btree_set(any::<u32>(), 1..200),
    ) {
        let mut f = cuckoo::CuckooFilter::with_capacity(4 * 200);
        for item in &items {
            f.insert(&item.to_le_bytes());
        }
        let lost = items.iter().filter(|i| !f.contains_quiet(&i.to_le_bytes())).count();
        // Eviction may only occur when candidate buckets are saturated;
        // at <=50% occupancy losses must be rare.
        prop_assert!(lost as u64 <= f.stats().evictions);
        prop_assert!(lost <= items.len() / 20, "{lost}/{}", items.len());
    }
}

mod bptree_oracle {
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    use bptree::BpTreeIndex;
    use dm_sim::{ClusterConfig, DmCluster};

    #[derive(Debug, Clone)]
    enum Op {
        Insert(u16, u8),
        Update(u16, u8),
        Remove(u16),
        Get(u16),
        Scan(u16, u16),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            3 => (any::<u16>(), any::<u8>()).prop_map(|(k, v)| Op::Insert(k, v)),
            1 => (any::<u16>(), any::<u8>()).prop_map(|(k, v)| Op::Update(k, v)),
            1 => any::<u16>().prop_map(Op::Remove),
            2 => any::<u16>().prop_map(Op::Get),
            1 => (any::<u16>(), any::<u16>()).prop_map(|(a, b)| Op::Scan(a, b)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The whole B-link stack (seqlock reads, leaf locks, SMO splits)
        /// agrees with BTreeMap on arbitrary histories.
        #[test]
        fn bptree_matches_btreemap(
            ops in proptest::collection::vec(op_strategy(), 1..150),
        ) {
            let cluster = DmCluster::new(ClusterConfig {
                mn_capacity: 64 << 20,
                ..ClusterConfig::default()
            });
            let index = BpTreeIndex::create(&cluster, 64 << 10).expect("create");
            let mut client = index.client(0).expect("client");
            let mut oracle: BTreeMap<u64, u8> = BTreeMap::new();
            for op in &ops {
                match op {
                    Op::Insert(k, v) => {
                        client.insert(*k as u64, &[*v]).expect("insert");
                        oracle.insert(*k as u64, *v);
                    }
                    Op::Update(k, v) => {
                        let did = client.update(*k as u64, &[*v]).expect("update");
                        prop_assert_eq!(did, oracle.contains_key(&(*k as u64)));
                        if did {
                            oracle.insert(*k as u64, *v);
                        }
                    }
                    Op::Remove(k) => {
                        let did = client.remove(*k as u64).expect("remove");
                        prop_assert_eq!(did, oracle.remove(&(*k as u64)).is_some());
                    }
                    Op::Get(k) => {
                        let got = client.get(*k as u64).expect("get").map(|v| v[0]);
                        prop_assert_eq!(got, oracle.get(&(*k as u64)).copied());
                    }
                    Op::Scan(a, b) => {
                        let (lo, hi) = if a <= b { (*a, *b) } else { (*b, *a) };
                        let got: Vec<(u64, u8)> = client
                            .scan(lo as u64, hi as u64)
                            .expect("scan")
                            .into_iter()
                            .map(|(k, v)| (k, v[0]))
                            .collect();
                        let want: Vec<(u64, u8)> = oracle
                            .range(lo as u64..=hi as u64)
                            .map(|(k, v)| (*k, *v))
                            .collect();
                        prop_assert_eq!(got, want);
                    }
                }
            }
        }
    }
}
