//! Pinned-seed regression sweep for the deterministic scheduler and the
//! linearizability pipeline: the explorer's CI contract in test form.
//!
//! * the same `(workload_seed, schedule seed)` must reproduce a
//!   byte-identical history (digest over the canonical encoding) — twice
//!   recorded, and once replayed from the recorded trace;
//! * a bounded sweep of pinned seeds across Sphinx, ART and the B+-tree
//!   must be linearizable under the full fault matrix (reorderings,
//!   delays, torn leaf reads, CAS-hold windows).
//!
//! A failure here is replayable: dump the printed trace to a file and use
//! `lincheck_explorer --replay` (see docs/TESTING.md).

use bench_harness::{run_scheduled, ExploreConfig, ScheduleMode, System};
use dm_sim::ScheduleConfig;
use lincheck::CheckConfig;
use obs::export_chrome;

fn cfg(system: System) -> ExploreConfig {
    ExploreConfig {
        system,
        threads: 3,
        keys: 16,
        ops_per_thread: 120,
        workload_seed: 0xBADC_0FFE,
        tear_hook: true,
        multi_ops: true,
        pipeline_depth: 1,
        check: CheckConfig::default(),
    }
}

#[test]
fn same_seed_runs_are_byte_identical() {
    let cfg = cfg(System::Sphinx);
    let mode = ScheduleMode::Record(ScheduleConfig::adversarial(42));
    let a = run_scheduled(&cfg, mode.clone());
    let b = run_scheduled(&cfg, mode);
    assert!(a.outcome.is_linearizable(), "{:?}", a.outcome);
    assert_eq!(
        a.history.canonical_bytes(),
        b.history.canonical_bytes(),
        "same (workload seed, schedule seed) must replay byte-identically"
    );
    assert_eq!(a.trace, b.trace);
}

#[test]
fn replaying_a_trace_reproduces_the_history() {
    let cfg = cfg(System::Art);
    let recorded = run_scheduled(&cfg, ScheduleMode::Record(ScheduleConfig::adversarial(9)));
    assert!(recorded.outcome.is_linearizable(), "{:?}", recorded.outcome);
    let replayed = run_scheduled(&cfg, ScheduleMode::Replay(recorded.trace.clone()));
    assert_eq!(
        recorded.history.canonical_bytes(),
        replayed.history.canonical_bytes()
    );
}

/// A truncated trace is still a complete schedule (round-robin fallback) —
/// the property the shrinker relies on.
#[test]
fn trace_prefix_replays_to_completion() {
    let cfg = cfg(System::Sphinx);
    let recorded = run_scheduled(&cfg, ScheduleMode::Record(ScheduleConfig::adversarial(5)));
    let half = recorded.trace.len() / 2;
    let out = run_scheduled(&cfg, ScheduleMode::Replay(recorded.trace[..half].to_vec()));
    assert!(out.outcome.is_linearizable(), "{:?}", out.outcome);
    // Same workload → same op count either way.
    assert_eq!(out.history.len(), recorded.history.len());
}

/// Regression: a hot key space (8 keys, 3 workers, 600 ops each) used to
/// panic the blocking get path with `Corrupt("root hash entry missing")`
/// when a concurrent root type switch invalidated the node a freshly
/// repaired FilterCache entry pointed at. The fix retries the entry
/// lookup on a bounded budget instead of trusting a single validation
/// round. Seeds pinned to the interleavings that provoked it.
#[test]
fn hot_keyspace_blocking_get_survives_root_type_switch() {
    let cfg = ExploreConfig::smoke(System::Sphinx, 3, 8, 600);
    for seed in [3u64, 6, 22, 29] {
        let out = run_scheduled(
            &cfg,
            ScheduleMode::Record(ScheduleConfig::adversarial(seed)),
        );
        assert!(
            out.outcome.is_linearizable(),
            "Sphinx hot-keyspace seed {seed}: {:?}",
            out.outcome
        );
    }
}

/// Same seed ⇒ byte-identical causal-trace export. The export is the
/// debugging artifact a failure report embeds; if it drifted across
/// identical runs, "replay the seed and look at the trace" would be
/// meaningless.
#[test]
fn same_seed_trace_export_is_byte_identical() {
    let mut cfg = cfg(System::Sphinx);
    cfg.pipeline_depth = 4; // exercise the pipelined trace path too
    let mode = ScheduleMode::Record(ScheduleConfig::adversarial(17));
    let a = run_scheduled(&cfg, mode.clone());
    let b = run_scheduled(&cfg, mode);
    assert!(a.outcome.is_linearizable(), "{:?}", a.outcome);
    assert!(
        !a.traces.is_empty(),
        "scheduled runs head-sample every op and must retain traces"
    );
    let ea = export_chrome(&a.traces);
    let eb = export_chrome(&b.traces);
    assert_eq!(
        ea, eb,
        "same (workload seed, schedule seed) must export byte-identical traces"
    );
}

/// The pinned regression sweep: every system × seed linearizable under
/// the adversarial matrix. Seeds are pinned so a regression is a stable,
/// replayable failure rather than a flake.
#[test]
fn pinned_seed_sweep_is_linearizable() {
    for system in [System::Sphinx, System::Art, System::BpTree] {
        let cfg = cfg(system);
        for seed in [1u64, 2, 3] {
            let out = run_scheduled(
                &cfg,
                ScheduleMode::Record(ScheduleConfig::adversarial(seed)),
            );
            assert!(
                out.outcome.is_linearizable(),
                "{} seed {seed}: {:?}\ntrace:\n{}",
                system.label(),
                out.outcome,
                out.trace
                    .iter()
                    .map(|s| s.to_string())
                    .collect::<Vec<_>>()
                    .join("\n"),
            );
        }
    }
}
