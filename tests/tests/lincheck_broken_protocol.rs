//! Negative control for the whole lincheck pipeline: with leaf checksum
//! validation switched off, torn leaf reads are *served* instead of
//! retried, and the checker must catch the resulting wrong values as a
//! linearizability violation. If this test fails, the checker has gone
//! blind — passing sweeps elsewhere prove nothing.
//!
//! This lives in its own integration-test binary on purpose: the
//! validation switch ([`node_engine::set_leaf_validation`]) is
//! process-wide, and sharing a process with tests that assume validated
//! reads would race it.

use bench_harness::{run_scheduled, shrink_failing_trace, ExploreConfig, ScheduleMode, System};
use dm_sim::ScheduleConfig;
use lincheck::CheckConfig;

#[test]
fn disabled_leaf_validation_is_caught_as_a_violation() {
    assert!(
        node_engine::set_leaf_validation(false),
        "validation expected on by default"
    );

    // The explorer's CI-scale negative config: small key space so torn
    // reads land on hot keys, full adversarial matrix. Pinned seed — the
    // run is deterministic, so this is a stable reproduction, not a roll
    // of the dice. (Under other seeds/matrices the served torn value can
    // instead poison a split and panic the worker — also a caught defect,
    // but this test pins the wrong-value path the checker exists for.)
    let cfg = ExploreConfig {
        check: CheckConfig::default(),
        ..ExploreConfig::smoke(System::Sphinx, 3, 8, 600)
    };
    let out = run_scheduled(&cfg, ScheduleMode::Record(ScheduleConfig::adversarial(1)));
    assert!(
        !out.outcome.is_linearizable(),
        "checker failed to catch served torn reads"
    );

    // The shrinker must hand back a failing prefix no longer than the
    // original trace, and replaying it must still fail — the reproduction
    // path a real bug report would take.
    let (minimal, failing) = shrink_failing_trace(&cfg, &out.trace);
    assert!(minimal.len() <= out.trace.len());
    assert!(!failing.outcome.is_linearizable());

    // With validation restored, the same schedule seed is clean: the
    // violation was the protocol's fault, not the checker crying wolf.
    node_engine::set_leaf_validation(true);
    let clean = run_scheduled(&cfg, ScheduleMode::Record(ScheduleConfig::adversarial(1)));
    assert!(clean.outcome.is_linearizable(), "{:?}", clean.outcome);

    // The pipelined op scheduler must not blunt the control: at depth 8
    // the batched reads run as in-flight state machines, and a served
    // torn leaf must still surface as a violation (the pipelined leaf
    // step serves unverified decodes exactly like the blocking path when
    // validation is off).
    node_engine::set_leaf_validation(false);
    let cfg8 = ExploreConfig {
        pipeline_depth: 8,
        ..cfg.clone()
    };
    let out8 = run_scheduled(&cfg8, ScheduleMode::Record(ScheduleConfig::adversarial(1)));
    assert!(
        !out8.outcome.is_linearizable(),
        "checker failed to catch served torn reads with pipelining enabled"
    );
    node_engine::set_leaf_validation(true);
    let clean8 = run_scheduled(&cfg8, ScheduleMode::Record(ScheduleConfig::adversarial(1)));
    assert!(clean8.outcome.is_linearizable(), "{:?}", clean8.outcome);
}
