//! Cluster metrics plane, end to end: conservation of the per-MN ledger
//! against the summed client ledger over real harness runs, byte-stable
//! `sphinx.metrics.v1` exports for same-seed runs, and the health
//! monitor's plumbing through both the runner and the lincheck driver.

use bench_harness::runner::{load_phase, run_phase, RunConfig};
use bench_harness::systems::System;
use bench_harness::{run_scheduled, ExploreConfig, ScheduleMode};
use dm_sim::ScheduleConfig;
use lincheck::CheckConfig;
use ycsb::{KeySpace, Workload};

fn cfg(workers: usize, depth: usize, sample_interval_ns: u64) -> RunConfig {
    RunConfig {
        keyspace: KeySpace::U64,
        num_keys: 4_000,
        workload: Workload::b(),
        workers,
        ops_per_worker: 800,
        warmup_per_worker: 100,
        seed: 0x4D45_5452,
        pipeline_depth: depth,
        trace_head_every: 0,
        trace_tail_k: 0,
        sample_interval_ns,
        sample_capacity: 128,
    }
}

/// Multi-worker runs conserve exactly at the blocking depth and at depth
/// 8, where round trips from different in-flight ops fuse into shared
/// doorbells that fan out to multiple MNs.
#[test]
fn conservation_holds_multi_worker_at_depths_1_and_8() {
    let handle = System::Sphinx.build(64 << 20, Some(1 << 20));
    load_phase(&handle, KeySpace::U64, 4_000, 4);
    for depth in [1usize, 8] {
        let r = run_phase(&handle, &cfg(4, depth, 0));
        r.metrics
            .conservation()
            .unwrap_or_else(|e| panic!("depth {depth} must conserve: {e}"));
        assert_eq!(r.metrics.health.checks, 4, "all detectors must run");
        assert!(r.metrics.window_ns > 0);
        assert!(
            r.metrics.cluster.mns.iter().map(|m| m.verbs()).sum::<u64>() > 0,
            "measured window must charge MN-side verbs"
        );
    }
}

/// Same-seed single-worker runs (single-threaded preload included — the
/// sampler records cumulative gauges) export byte-identical documents,
/// at depth 1 and depth 8, with sampling on.
#[test]
fn same_seed_exports_are_byte_identical() {
    for depth in [1usize, 8] {
        let export = || {
            let handle = System::Sphinx.build(64 << 20, Some(1 << 20));
            load_phase(&handle, KeySpace::U64, 4_000, 1);
            let r = run_phase(&handle, &cfg(1, depth, 2_000));
            r.metrics.to_json()
        };
        let (a, b) = (export(), export());
        assert_eq!(
            a, b,
            "depth-{depth} same-seed export must be byte-identical"
        );
        // And it round-trips through the in-tree parser.
        let doc = obs::json::parse(&a).expect("metrics export must parse");
        assert_eq!(
            doc.get("schema").and_then(|v| v.as_str()),
            Some(obs::METRICS_SCHEMA)
        );
        assert_eq!(doc.get("conserved").and_then(|v| v.as_u64()), Some(1));
        // This crate always builds bench-harness with default features,
        // so the sampler is compiled in and must have produced rows.
        assert!(
            doc.get("samples").is_some(),
            "sampling on must export rows with telemetry enabled"
        );
    }
}

/// The lincheck driver closes its own conservation window (preload plus
/// every scheduled worker) and stamps the health verdict into the merged
/// registry of the run output.
#[test]
fn lincheck_runs_carry_conserved_metrics() {
    let cfg = ExploreConfig {
        system: System::Sphinx,
        threads: 3,
        keys: 24,
        ops_per_thread: 40,
        workload_seed: 0x4D45_5452,
        tear_hook: false,
        multi_ops: true,
        pipeline_depth: 1,
        check: CheckConfig::default(),
    };
    let out = run_scheduled(&cfg, ScheduleMode::Record(ScheduleConfig::adversarial(7)));
    assert!(out.outcome.is_linearizable(), "baseline schedule must pass");
    out.metrics
        .conservation()
        .expect("lincheck window must conserve");
    assert_eq!(out.metrics.health.checks, 4);
    assert_eq!(
        out.telemetry.counter("health.checks"),
        4,
        "verdict must be stamped into the merged registry"
    );
    assert!(out.metrics.window_ns > 0);
}
