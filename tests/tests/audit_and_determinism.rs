//! Post-concurrency integrity audits and cost-model determinism.

use bench_harness::systems::{System, SystemHandle};
use ycsb::KeySpace;

/// After a multi-threaded write storm settles, the remote structure must
/// pass the full `verify()` audit: prefix hashes, hash-table entries,
/// checksums, dispatch bytes — everything.
#[test]
fn sphinx_verifies_clean_after_write_storm() {
    let handle = System::Sphinx.build(256 << 20, Some(64 << 10));
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let handle = handle.clone();
            s.spawn(move || {
                let mut w = handle.worker((t % 3) as u16);
                for i in 0..400u64 {
                    let idx = (t * 131 + i * 7) % 500;
                    let key = KeySpace::Email.key(idx);
                    if i % 3 == 0 {
                        let _ = w.update(&key, &[t as u8; 40]);
                    } else {
                        w.insert(&key, &[t as u8; 40]);
                    }
                }
            });
        }
    });
    let SystemHandle::Sphinx(index) = &handle else {
        unreachable!()
    };
    let report = index.verify().expect("verify");
    assert!(report.is_clean(), "violations: {:#?}", report.problems);
    assert!(report.inner_nodes > 5);
    assert!(report.leaves >= 400, "leaves: {}", report.leaves);
}

/// The baselines must also pass their structural audit after a storm.
#[test]
fn baselines_verify_clean_after_write_storm() {
    for sys in [System::Smart, System::Art] {
        let handle = sys.build(256 << 20, Some(64 << 10));
        std::thread::scope(|s| {
            for t in 0..3u64 {
                let handle = handle.clone();
                s.spawn(move || {
                    let mut w = handle.worker((t % 3) as u16);
                    for i in 0..300u64 {
                        let idx = (t * 101 + i * 11) % 400;
                        w.insert(&KeySpace::Email.key(idx), &[t as u8; 24]);
                    }
                });
            }
        });
        let SystemHandle::Baseline(index) = &handle else {
            unreachable!()
        };
        let report = index.verify().expect("verify");
        assert!(
            report.is_clean(),
            "{}: violations: {:#?}",
            sys.label(),
            report.problems
        );
        assert!(report.leaves >= 300, "{}: {}", sys.label(), report.leaves);
    }
}

/// `multi_get` must agree with sequential gets even while writers churn
/// the same keys (values are checked for integrity, not freshness — the
/// batch is not a snapshot).
#[test]
fn multi_get_is_safe_under_concurrent_writes() {
    let handle = System::Sphinx.build(128 << 20, Some(64 << 10));
    {
        let mut w = handle.worker(0);
        for i in 0..200u64 {
            w.insert(&KeySpace::U64.key(i), &[7u8; 32]);
        }
    }
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        let h = handle.clone();
        let stop_ref = &stop;
        s.spawn(move || {
            let mut w = h.worker(1);
            let mut round = 0u8;
            while !stop_ref.load(std::sync::atomic::Ordering::Relaxed) {
                round = round.wrapping_add(1);
                for i in (0..200u64).step_by(3) {
                    w.update(&KeySpace::U64.key(i), &[round; 32]);
                }
            }
        });

        let SystemHandle::Sphinx(index) = &handle else {
            unreachable!()
        };
        let mut reader = index.client(2).expect("client");
        let keys: Vec<Vec<u8>> = (0..200u64).map(|i| KeySpace::U64.key(i)).collect();
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        for _ in 0..30 {
            let results = reader.multi_get(&refs).expect("multi_get");
            for (key, res) in refs.iter().zip(results) {
                let v =
                    res.unwrap_or_else(|| panic!("key {:?} lost", String::from_utf8_lossy(key)));
                assert_eq!(v.len(), 32);
                assert!(
                    v.iter().all(|&b| b == v[0]),
                    "torn value from multi_get: {v:?}"
                );
            }
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });
}

/// With a single worker there is no scheduling nondeterminism, so the
/// virtual-time cost model must be exactly reproducible — a regression
/// guard for the simulator.
#[test]
fn single_worker_virtual_time_is_deterministic() {
    use bench_harness::runner::{load_phase, run_phase, RunConfig};
    use ycsb::Workload;

    let run = || {
        let handle = System::Sphinx.build(64 << 20, Some(32 << 10));
        load_phase(&handle, KeySpace::U64, 3_000, 1);
        let r = run_phase(
            &handle,
            &RunConfig {
                keyspace: KeySpace::U64,
                num_keys: 3_000,
                workload: Workload::a(),
                workers: 1,
                ops_per_worker: 500,
                warmup_per_worker: 100,
                seed: 0xD00D,
                pipeline_depth: 1,
                trace_head_every: 0,
                trace_tail_k: obs::DEFAULT_TAIL_K,
                sample_interval_ns: 0,
                sample_capacity: 0,
            },
        );
        (r.mops.to_bits(), r.avg_latency_us.to_bits(), r.total_ops)
    };
    assert_eq!(
        run(),
        run(),
        "single-worker virtual time must be bit-identical"
    );
}
