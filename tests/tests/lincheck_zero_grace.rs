//! Negative control for epoch-based reclamation: with the grace period
//! switched off, retired regions are freed the moment they are unlinked,
//! so a delayed reader holding the old address can be served recycled
//! memory that decodes as a perfectly valid — but wrong — leaf. The
//! linearizability checker must catch that as a violation; if this test
//! fails, clean reclamation sweeps elsewhere prove nothing.
//!
//! This lives in its own integration-test binary on purpose: the
//! zero-grace switch ([`reclaim::set_zero_grace`]) is process-wide, and
//! sharing a process with tests that assume grace-period protection
//! would race it.

use bench_harness::{run_scheduled, shrink_failing_trace, ExploreConfig, ScheduleMode, System};
use dm_sim::ScheduleConfig;
use lincheck::CheckConfig;

#[test]
fn zero_grace_reclamation_is_caught_as_a_violation() {
    assert!(
        !reclaim::zero_grace(),
        "grace period expected on by default"
    );
    reclaim::set_zero_grace(true);

    // The explorer's CI-scale negative config: a hot 8-key space so
    // freed leaf regions are re-allocated quickly, full adversarial
    // matrix. Pinned seed — the run is deterministic, so this is a
    // stable reproduction, not a roll of the dice. (Under other seeds
    // the recycled region instead poisons a traversal and panics the
    // worker — also a caught defect, but this test pins the wrong-value
    // path the checker exists for.)
    let cfg = ExploreConfig {
        check: CheckConfig::default(),
        ..ExploreConfig::smoke(System::Sphinx, 3, 8, 600)
    };
    let out = run_scheduled(&cfg, ScheduleMode::Record(ScheduleConfig::adversarial(28)));
    assert!(
        !out.outcome.is_linearizable(),
        "checker failed to catch use-after-free serving"
    );

    // The shrinker must hand back a failing prefix no longer than the
    // original trace, and replaying it must still fail — the
    // reproduction path a real bug report would take.
    let (minimal, failing) = shrink_failing_trace(&cfg, &out.trace);
    assert!(minimal.len() <= out.trace.len());
    assert!(!failing.outcome.is_linearizable());

    // With the grace period restored, the same schedule seed is clean:
    // the violation was the missing grace period's fault, not the
    // checker crying wolf.
    reclaim::set_zero_grace(false);
    let clean = run_scheduled(&cfg, ScheduleMode::Record(ScheduleConfig::adversarial(28)));
    assert!(clean.outcome.is_linearizable(), "{:?}", clean.outcome);

    // The pipelined op scheduler must not blunt the control: ops parked
    // in pipeline slots hold their own pins, so with the grace period
    // off a recycled region must still be served to some pipelined
    // reader and caught by the checker. A 4-key space (hotter than the
    // blocking control's 8 — pipelined multi-gets resolve in fewer
    // virtual rounds, so the reader's capture-to-read window is
    // narrower and needs faster region recycling to be hit) with a
    // pinned seed deterministically serves the wrong value at depth 8;
    // the same schedule seed is clean once the grace period is back.
    reclaim::set_zero_grace(true);
    let cfg8 = ExploreConfig {
        pipeline_depth: 8,
        check: CheckConfig::default(),
        ..ExploreConfig::smoke(System::Sphinx, 3, 4, 600)
    };
    let out8 = run_scheduled(&cfg8, ScheduleMode::Record(ScheduleConfig::adversarial(15)));
    assert!(
        !out8.outcome.is_linearizable(),
        "use-after-free left no trace with pipelining enabled"
    );
    reclaim::set_zero_grace(false);
    let clean8 = run_scheduled(&cfg8, ScheduleMode::Record(ScheduleConfig::adversarial(15)));
    assert!(clean8.outcome.is_linearizable(), "{:?}", clean8.outcome);
}
