//! Substrate stress tests: heavier, longer-running checks of the DM
//! simulator, the RACE table under mixed concurrent churn, and the
//! filter's statistical behaviour at the paper's operating points.

use dm_sim::{ClusterConfig, DmCluster, DoorbellBatch, NetConfig, Verb, VerbResult};
use integration_tests::mix64 as mix;
use race_hash::{RaceTable, TableConfig};

#[test]
fn heap_survives_concurrent_mixed_verbs() {
    // 6 clients hammer disjoint and shared regions with every verb type;
    // counters and disjoint regions must come out exact.
    let cluster = DmCluster::new(ClusterConfig {
        num_mns: 2,
        num_cns: 3,
        mn_capacity: 4 << 20,
        ..Default::default()
    });
    let shared = cluster.mn(0).unwrap().alloc(8).unwrap();
    let threads = 6u64;
    let per = 2_000u64;
    std::thread::scope(|s| {
        for t in 0..threads {
            let cluster = cluster.clone();
            s.spawn(move || {
                let mut cl = cluster.client((t % 3) as u16);
                let private = cl.alloc((t % 2) as u16, 256).unwrap();
                for i in 0..per {
                    // Private region: write-read roundtrip must be exact.
                    let payload = [((t * 37 + i) % 251) as u8; 64];
                    cl.write(private, &payload).unwrap();
                    assert_eq!(cl.read(private, 64).unwrap(), payload, "t{t} i{i}");
                    // Shared counter via FAA.
                    cl.faa(shared, 1).unwrap();
                    // Doorbell batch spanning both MNs.
                    let mut batch = DoorbellBatch::new();
                    batch.push(Verb::Read {
                        ptr: private,
                        len: 8,
                    });
                    batch.push(Verb::Read {
                        ptr: shared,
                        len: 8,
                    });
                    let res = cl.execute(batch).unwrap();
                    assert!(matches!(res[0], VerbResult::Read(_)));
                }
                cl.free(private).unwrap();
            });
        }
    });
    let total = cluster.mn(0).unwrap().load_u64(shared.offset()).unwrap();
    assert_eq!(total, threads * per, "FAA lost increments");
}

#[test]
fn fluid_queue_saturates_at_capacity() {
    // Offered load beyond NIC capacity must produce completion times that
    // stretch to (work / capacity): the saturation mechanics behind Fig. 5.
    let net = NetConfig {
        rtt_ns: 1000,
        msg_ns: 100,
        byte_ns_x1000: 0,
        client_op_ns: 0,
    };
    let cluster = DmCluster::new(ClusterConfig {
        num_mns: 1,
        num_cns: 1,
        mn_capacity: 1 << 20,
        net,
        ..Default::default()
    });
    let ptr = cluster.mn(0).unwrap().alloc(8).unwrap();
    // 1000 batches arriving "simultaneously" at t=0 from one client whose
    // clock we pin: service = 100 ns each → last completion ≥ 100 µs.
    let mut cl = cluster.client(0);
    let mut last = 0;
    for _ in 0..1000 {
        cl.set_clock_ns(0);
        cl.read(ptr, 8).unwrap();
        last = last.max(cl.clock_ns());
    }
    assert!(
        last >= 1000 * 100,
        "backlog should stretch completions to work/capacity: {last}"
    );
}

#[test]
fn race_table_concurrent_mixed_churn() {
    // Four clients interleave inserts, removes and replaces over an
    // overlapping key population while the table grows through splits;
    // final state must equal the per-key last-operation outcome computed
    // from a deterministic schedule.
    let cluster = DmCluster::new(ClusterConfig {
        num_mns: 1,
        num_cns: 2,
        mn_capacity: 64 << 20,
        ..Default::default()
    });
    let mut boot = cluster.client(0);
    let meta = RaceTable::create(
        &mut boot,
        0,
        &TableConfig {
            initial_depth: 1,
            max_depth: 12,
        },
    )
    .unwrap();

    let keys_per_thread = 600u64;
    let threads = 4u64;
    std::thread::scope(|s| {
        for t in 0..threads {
            let cluster = cluster.clone();
            s.spawn(move || {
                let mut cl = cluster.client((t % 2) as u16);
                let mut table = RaceTable::open(&mut cl, meta).unwrap();
                let oracle = |_c: &mut dm_sim::DmClient, w: u64| Ok(w & ((1 << 42) - 1));
                // Each thread owns a disjoint key set: ops on them are
                // exactly reproducible.
                for i in 0..keys_per_thread {
                    let h = mix(t * keys_per_thread + i);
                    let w = (h & ((1 << 42) - 1)) | (1 << 43);
                    table.insert(&mut cl, h, w, oracle).unwrap();
                    match i % 3 {
                        0 => {
                            // leave as inserted
                        }
                        1 => {
                            assert!(table.replace(&mut cl, h, w, w | 1 << 50).unwrap());
                        }
                        _ => {
                            assert!(table.remove(&mut cl, h, w).unwrap());
                        }
                    }
                }
            });
        }
    });

    let mut cl = cluster.client(0);
    let mut table = RaceTable::open(&mut cl, meta).unwrap();
    for t in 0..threads {
        for i in 0..keys_per_thread {
            let h = mix(t * keys_per_thread + i);
            let w = (h & ((1 << 42) - 1)) | (1 << 43);
            let found = table.search(&mut cl, h).unwrap();
            match i % 3 {
                0 => assert!(
                    found.iter().any(|e| e.word == w),
                    "plain insert lost (t{t} i{i})"
                ),
                1 => assert!(
                    found.iter().any(|e| e.word == (w | 1 << 50)),
                    "replace lost (t{t} i{i})"
                ),
                _ => assert!(
                    !found
                        .iter()
                        .any(|e| e.word & ((1 << 42) - 1) == w & ((1 << 42) - 1)),
                    "remove resurrected (t{t} i{i})"
                ),
            }
        }
    }
    let stats = table.stats(&mut cl).unwrap();
    assert_eq!(stats.entries as u64, threads * keys_per_thread * 2 / 3);
}

#[test]
fn filter_false_positive_rate_at_paper_operating_point() {
    // §III-B: "a 10-bit fingerprint per item is sufficient for <1% false
    // positives". We run 12-bit fingerprints at 85% occupancy — the rate
    // must stay well under 1%.
    let mut f = cuckoo::CuckooFilter::with_capacity_and_seed(1 << 16, 11);
    let target = (f.capacity() as f64 * 0.85) as u64;
    let mut inserted = 0u64;
    let mut i = 0u64;
    while inserted < target {
        f.insert(&mix(i).to_le_bytes());
        inserted = f.len() as u64;
        i += 1;
    }
    let probes = 200_000u64;
    let fps = (0..probes)
        .filter(|j| f.contains_quiet(&(0xDEAD_0000_0000 + j).to_le_bytes()))
        .count();
    let rate = fps as f64 / probes as f64;
    assert!(rate < 0.01, "fp rate at 85% load: {rate}");
}

#[test]
fn latest_distribution_tracks_inserts_through_the_stack() {
    // Workload D end-to-end: inserts grow the population while "latest"
    // reads must keep finding the newest keys (a cross-check of cursor,
    // distribution and index together).
    use bench_harness::systems::System;
    use ycsb::{value_for, KeySpace, Op, OpStream, Workload};

    let handle = System::Sphinx.build(128 << 20, Some(64 << 10));
    let mut w = handle.worker(0);
    let preloaded = 2_000u64;
    for i in 0..preloaded {
        w.insert(&KeySpace::U64.key(i), &value_for(i, 0));
    }
    let mut stream = OpStream::new(
        Workload {
            insert: 0.05,
            read: 0.95,
            update: 0.0,
            ..Workload::d()
        },
        preloaded,
        9,
    );
    let mut found = 0u64;
    let mut reads = 0u64;
    for _ in 0..4_000 {
        match stream.next_op() {
            Op::Insert(idx) => w.insert(&KeySpace::U64.key(idx), &value_for(idx, 0)),
            Op::Read(idx) => {
                reads += 1;
                if w.get(&KeySpace::U64.key(idx)).is_some() {
                    found += 1;
                }
            }
            _ => {}
        }
    }
    // Every "latest" read targets a key that has been inserted (preloaded
    // or by this stream), so the hit rate must be ~100%.
    assert!(
        found as f64 / reads as f64 > 0.999,
        "latest reads missed fresh inserts: {found}/{reads}"
    );
}

/// Cross-validation of the memory accounting: loading the same keys into
/// the local reference ART and into remote Sphinx, the census-based
/// estimate of the remote tree must agree with the allocator's measured
/// live bytes (within size-class rounding and hash-table exclusion).
#[test]
fn census_estimate_matches_measured_art_bytes() {
    use bench_harness::systems::{System, SystemHandle};
    use ycsb::{value_for, KeySpace, VALUE_LEN};

    let n = 20_000u64;
    // Local reference tree over the identical key set.
    let mut local = art_core::LocalArt::new();
    let mut key_bytes = 0usize;
    for i in 0..n {
        let k = KeySpace::U64.key(i);
        key_bytes += k.len();
        local.insert(k, ());
    }
    let census = local.census();
    let estimate = census.remote_bytes_estimate(key_bytes / n as usize, VALUE_LEN);

    // Remote tree over the same keys.
    let handle = System::Sphinx.build(1 << 30, Some(64 << 10));
    {
        let mut w = handle.worker(0);
        for i in 0..n {
            w.insert(&KeySpace::U64.key(i), &value_for(i, 0));
        }
    }
    let SystemHandle::Sphinx(index) = &handle else {
        unreachable!()
    };
    let measured = index.space_breakdown().expect("space").art_bytes;

    let ratio = measured as f64 / estimate as f64;
    assert!(
        (0.9..1.4).contains(&ratio),
        "accounting drift: estimate {estimate}, measured {measured} (ratio {ratio:.2})"
    );
    // And the structures themselves must agree.
    let remote = index.verify().expect("verify");
    assert_eq!(
        remote.inner_nodes,
        census.inner_nodes(),
        "inner node counts differ"
    );
    assert_eq!(
        remote.leaves,
        census.leaves + census.inner_values,
        "leaf counts differ"
    );
}
