//! Concurrent `multi_get` / `scan` against live writers: every value a
//! batched read or a scan returns must be individually linearizable —
//! i.e. attributable to some write whose lifetime overlaps the read's
//! interval consistently with all other operations on that key.
//!
//! The checker decomposes a `multi_get` into one read event per key and a
//! scan into one read event per *returned* pair, all sharing the parent's
//! interval — exactly the "individually linearizable" contract (the
//! deliberately weaker-than-snapshot semantics the index provides).

use std::sync::Arc;

use bench_harness::{apply_op, systems::System};
use integration_tests::tagged_value;
use lincheck::{check_history, CheckConfig, HistoryRecorder, Op};
use ycsb::KeySpace;

fn readers_vs_writers(system: System) {
    let handle = system.build(128 << 20, Some(64 << 10));
    let keys = 24u64;
    let rec = Arc::new(HistoryRecorder::new());

    // Preload every key so scans have stable ground under the churn.
    {
        let mut w = handle.worker(0);
        for i in 0..keys {
            let op = Op::Insert {
                key: KeySpace::U64.key(i),
                value: tagged_value(7, i as u32),
            };
            let id = rec.invoke_now(4, op.clone());
            let ret = apply_op(&mut w, &op);
            rec.respond_now(id, ret);
        }
    }

    std::thread::scope(|s| {
        // Two writers churning overlapping slices: inserts, updates and
        // deletes so readers race every kind of transition.
        for wt in 0..2u32 {
            let h = handle.clone();
            let rec = Arc::clone(&rec);
            s.spawn(move || {
                let mut w = h.worker((wt % 3) as u16);
                for r in 0..240u32 {
                    let idx = ((wt as u64) * 5 + (r as u64) * 11) % keys;
                    let key = KeySpace::U64.key(idx);
                    let op = match r % 4 {
                        0 | 1 => Op::Insert {
                            key,
                            value: tagged_value(wt as u8, r),
                        },
                        2 => Op::Update {
                            key,
                            value: tagged_value(wt as u8, r),
                        },
                        _ => Op::Delete { key },
                    };
                    let id = rec.invoke_now(wt, op.clone());
                    let ret = apply_op(&mut w, &op);
                    rec.respond_now(id, ret);
                }
            });
        }
        // Two readers: one batching multi_gets, one scanning ranges.
        let h = handle.clone();
        let rec_m = Arc::clone(&rec);
        s.spawn(move || {
            let mut w = h.worker(2);
            for r in 0..160u64 {
                let op = Op::MultiGet {
                    keys: (0..4)
                        .map(|j| KeySpace::U64.key((r * 3 + j) % keys))
                        .collect(),
                };
                let id = rec_m.invoke_now(2, op.clone());
                let ret = apply_op(&mut w, &op);
                rec_m.respond_now(id, ret);
            }
        });
        let h = handle.clone();
        let rec_s = Arc::clone(&rec);
        s.spawn(move || {
            let mut w = h.worker(0);
            for r in 0..120u64 {
                let a = KeySpace::U64.key(r % keys);
                let b = KeySpace::U64.key((r * 7 + 3) % keys);
                let (low, high) = if a <= b { (a, b) } else { (b, a) };
                let op = if r % 3 == 0 {
                    Op::ScanN {
                        low,
                        limit: 1 + (r as usize % 4),
                    }
                } else {
                    Op::Scan { low, high }
                };
                let id = rec_s.invoke_now(3, op.clone());
                let ret = apply_op(&mut w, &op);
                rec_s.respond_now(id, ret);
            }
        });
    });

    let history = Arc::try_unwrap(rec).expect("recorder shared").finish();
    assert!(history.len() > 500);
    let outcome = check_history(&history, &CheckConfig::default());
    assert!(outcome.is_linearizable(), "{}: {outcome:?}", system.label());
}

#[test]
fn sphinx_multiget_scan_values_individually_linearizable() {
    readers_vs_writers(System::Sphinx);
}

#[test]
fn art_multiget_scan_values_individually_linearizable() {
    readers_vs_writers(System::Art);
}

#[test]
fn bptree_multiget_scan_values_individually_linearizable() {
    readers_vs_writers(System::BpTree);
}
