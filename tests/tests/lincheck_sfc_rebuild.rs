//! Lincheck sweep with SFC generation rebuilds forced *inside* the
//! adversarial schedules: `SPHINX_SFC_REBUILD_EVERY=1` arms a rebuild
//! after every delta insert (a lincheck-sized key space teaches too few
//! prefixes to cross the auto threshold), so generation swaps race the
//! concurrent probes, inserts, and deletes the schedule interleaves.
//!
//! The key space is 256 u64 keys rather than the usual smoke 16: u64
//! keys are high-entropy bytes, and the filter only learns *inner-node*
//! prefixes, so the space must be big enough for first-byte collisions
//! to split leaves into inner nodes. At 16 keys the tree is flat and no
//! prefix is ever published; at 256 the birthday bound guarantees
//! dozens of splits.
//! Histories must stay linearizable and bit-for-bit reproducible at
//! pipeline depths 1 and 8 — the never-torn-generation contract of
//! `sfc::FilterCache`.
//!
//! This file is its own test binary because the environment override is
//! process-global.

use bench_harness::{run_scheduled, ExploreConfig, ScheduleMode, System};
use dm_sim::ScheduleConfig;
use lincheck::CheckConfig;

fn cfg(depth: usize) -> ExploreConfig {
    ExploreConfig {
        pipeline_depth: depth,
        check: CheckConfig::default(),
        ..ExploreConfig::smoke(System::Sphinx, 3, 256, 200)
    }
}

#[test]
fn rebuilds_firing_mid_schedule_stay_linearizable_and_deterministic() {
    std::env::set_var("SPHINX_SFC_REBUILD_EVERY", "1");
    for depth in [1usize, 8] {
        for seed in [3u64, 11] {
            let mode = ScheduleMode::Record(ScheduleConfig::adversarial(seed));
            let a = run_scheduled(&cfg(depth), mode.clone());
            assert!(
                a.outcome.is_linearizable(),
                "depth {depth} seed {seed}: {:?}",
                a.outcome
            );
            let rebuilds = a.telemetry.counter("sfc.gen.rebuilds");
            assert!(
                rebuilds > 0,
                "depth {depth} seed {seed}: no rebuild fired inside the schedule — \
                 the sweep is not testing generation swaps"
            );
            // Rebuild timing is driven by op boundaries, which are
            // schedule steps: a rerun under the same trace must produce
            // the identical history even with generations swapping.
            let b = run_scheduled(&cfg(depth), mode);
            assert!(b.outcome.is_linearizable());
            assert_eq!(
                a.history.digest(),
                b.history.digest(),
                "depth {depth} seed {seed}: reruns with rebuilds must be byte-identical"
            );
            assert_eq!(a.trace, b.trace);
        }
    }
}
