//! Lincheck sweep over the pipelined op scheduler: the batched-read slice
//! of the mix runs through `multi_get_pipelined` at depths 1/4/8 under
//! adversarial lock-step schedules, and the history must stay
//! linearizable and bit-for-bit reproducible — the determinism contract
//! of the completion-queue layer (under a schedule, fused flushing
//! degrades to per-batch legacy execution precisely so that grant order
//! stays a pure function of the seed).
//!
//! Depth-1 equivalence with the legacy blocking path is asserted at the
//! facade level: same system, same keys, `multi_get_pipelined(.., 1)`
//! must return exactly what blocking point gets return, with identical
//! network round trips and doorbells.

use bench_harness::{run_scheduled, ExploreConfig, ScheduleMode, System};
use dm_sim::ScheduleConfig;
use lincheck::CheckConfig;
use ycsb::KeySpace;

fn cfg(system: System, depth: usize) -> ExploreConfig {
    ExploreConfig {
        pipeline_depth: depth,
        check: CheckConfig::default(),
        ..ExploreConfig::smoke(system, 3, 16, 200)
    }
}

#[test]
fn pipelined_histories_stay_linearizable_and_deterministic() {
    for system in [System::Sphinx, System::BpTree] {
        for depth in [1usize, 4, 8] {
            for seed in [7u64, 21] {
                let mode = ScheduleMode::Record(ScheduleConfig::adversarial(seed));
                let a = run_scheduled(&cfg(system, depth), mode.clone());
                assert!(
                    a.outcome.is_linearizable(),
                    "{} depth {depth} seed {seed}: {:?}",
                    system.label(),
                    a.outcome
                );
                let b = run_scheduled(&cfg(system, depth), mode);
                assert!(b.outcome.is_linearizable());
                assert_eq!(
                    a.history.digest(),
                    b.history.digest(),
                    "{} depth {depth} seed {seed}: reruns must be byte-identical",
                    system.label()
                );
                assert_eq!(a.trace, b.trace);
            }
        }
    }
}

#[test]
fn pipelined_replay_reproduces_the_recorded_history() {
    let c = cfg(System::Sphinx, 8);
    let rec = run_scheduled(&c, ScheduleMode::Record(ScheduleConfig::adversarial(5)));
    assert!(rec.outcome.is_linearizable(), "{:?}", rec.outcome);
    let rep = run_scheduled(&c, ScheduleMode::Replay(rec.trace.clone()));
    assert_eq!(rec.history.digest(), rep.history.digest());
    assert_eq!(rec.trace, rep.trace);
}

#[test]
fn depth_one_equals_the_legacy_blocking_path() {
    for system in [System::Sphinx, System::BpTree] {
        let handle = system.build(64 << 20, Some(1 << 20));
        let mut w = handle.worker(0);
        let n = 400u64;
        for i in 0..n {
            w.insert(&KeySpace::U64.key(i), &ycsb::value_for(i, 0));
        }
        // Mix of present and absent keys, striped so consecutive lookups
        // hit different MNs.
        let keys: Vec<Vec<u8>> = (0..n + 50)
            .map(|i| KeySpace::U64.key(i.wrapping_mul(17) % (n + 25)))
            .collect();
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();

        let blocking: Vec<Option<Vec<u8>>> = refs.iter().map(|k| w.get(k)).collect();
        let base = w.net_stats();
        let d1 = w.multi_get_pipelined(&refs, 1);
        let net1 = w.net_stats().since(&base);
        assert_eq!(blocking, d1, "{}: depth 1 diverged", system.label());
        assert_eq!(
            net1.round_trips,
            net1.doorbells,
            "{}: depth 1 must not fuse doorbells",
            system.label()
        );

        let d8 = w.multi_get_pipelined(&refs, 8);
        assert_eq!(blocking, d8, "{}: depth 8 diverged", system.label());
    }
}
