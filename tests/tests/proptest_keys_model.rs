//! Property tests for variable-length key edge cases, through the uniform
//! [`WorkerClient`] facade against a `BTreeMap` model: empty keys, 1-byte
//! keys, 512-byte keys, and long shared prefixes differing only in the
//! last byte — plus `scan` / `scan_n` boundary semantics at the range
//! edges. The fixed-width B+-tree gets the same treatment over u64
//! boundary keys (0, 1, MAX-1, MAX) since it cannot represent the
//! variable-length cases, which is the point of the comparison.

use std::collections::BTreeMap;

use proptest::prelude::*;

use bench_harness::systems::{System, WorkerClient};

#[derive(Debug, Clone)]
enum Step {
    Insert(Vec<u8>, Vec<u8>),
    Update(Vec<u8>, Vec<u8>),
    Remove(Vec<u8>),
    Get(Vec<u8>),
    Scan(Vec<u8>, Vec<u8>),
    ScanN(Vec<u8>, usize),
    MultiGet(Vec<Vec<u8>>),
}

/// Keys biased hard toward the edge cases this suite exists for.
fn edge_key() -> BoxedStrategy<Vec<u8>> {
    prop_oneof![
        // Empty key (the shortest possible).
        1 => Just(Vec::new()),
        // 1-byte keys.
        2 => any::<u8>().prop_map(|b| vec![b]),
        // 512-byte keys sharing 511 bytes, differing only in the last.
        1 => (0u8..3, any::<u8>()).prop_map(|(fill, last)| {
            let mut k = vec![fill; 512];
            k[511] = last;
            k
        }),
        // Long shared ASCII prefix, last byte varies over a small set so
        // collisions between steps are frequent.
        3 => (0u8..6).prop_map(|last| {
            let mut k = b"shared-prefix/shared-prefix/shared-prefix".to_vec();
            k.push(last);
            k
        }),
        // Short general keys (covers prefix-of-another-key shapes).
        3 => proptest::collection::vec(any::<u8>(), 0..6),
    ]
    .boxed()
}

/// u64 boundary keys for the fixed-width B+-tree, as 8-byte big-endian.
fn bp_edge_key() -> BoxedStrategy<Vec<u8>> {
    prop_oneof![
        2 => Just(0u64),
        2 => Just(1u64),
        2 => Just(u64::MAX - 1),
        2 => Just(u64::MAX),
        3 => any::<u64>(),
    ]
    .prop_map(|k| k.to_be_bytes().to_vec())
    .boxed()
}

fn val() -> impl Strategy<Value = Vec<u8>> {
    // ≤ 62 bytes: the facade's B+-tree value budget (length-prefixed
    // 64-byte slots); the variable-length systems share the bound so one
    // strategy serves all.
    proptest::collection::vec(any::<u8>(), 0..60)
}

fn step_strategy(key: fn() -> BoxedStrategy<Vec<u8>>) -> impl Strategy<Value = Step> {
    prop_oneof![
        3 => (key(), val()).prop_map(|(k, v)| Step::Insert(k, v)),
        1 => (key(), val()).prop_map(|(k, v)| Step::Update(k, v)),
        1 => key().prop_map(Step::Remove),
        2 => key().prop_map(Step::Get),
        2 => (key(), key()).prop_map(|(a, b)| Step::Scan(a, b)),
        1 => (key(), 0usize..5).prop_map(|(k, n)| Step::ScanN(k, n)),
        1 => proptest::collection::vec(key(), 1..5).prop_map(Step::MultiGet),
    ]
}

fn run_model(system: System, steps: &[Step]) -> Result<(), TestCaseError> {
    let handle = system.build(64 << 20, Some(64 << 10));
    let mut w: WorkerClient = handle.worker(0);
    let mut oracle: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    let label = system.label();

    for step in steps {
        match step {
            Step::Insert(k, v) => {
                w.insert(k, v);
                oracle.insert(k.clone(), v.clone());
            }
            Step::Update(k, v) => {
                let did = w.update(k, v);
                prop_assert_eq!(did, oracle.contains_key(k), "{} update", label);
                if did {
                    oracle.insert(k.clone(), v.clone());
                }
            }
            Step::Remove(k) => {
                let did = w.remove(k);
                prop_assert_eq!(did, oracle.remove(k).is_some(), "{} remove", label);
            }
            Step::Get(k) => {
                prop_assert_eq!(w.get(k), oracle.get(k).cloned(), "{} get {:02x?}", label, k);
            }
            Step::Scan(a, b) => {
                let (low, high) = if a <= b { (a, b) } else { (b, a) };
                let got = w.scan_pairs(low, high);
                let want: Vec<(Vec<u8>, Vec<u8>)> = oracle
                    .range(low.clone()..=high.clone())
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                prop_assert_eq!(got, want, "{} scan [{:02x?}, {:02x?}]", label, low, high);
            }
            Step::ScanN(low, n) => {
                let got = w.scan_n(low, *n);
                let want: Vec<(Vec<u8>, Vec<u8>)> = oracle
                    .range(low.clone()..)
                    .take(*n)
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                prop_assert_eq!(got, want, "{} scan_n from {:02x?}", label, low);
            }
            Step::MultiGet(keys) => {
                let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
                let got = w.multi_get(&refs);
                for (k, g) in refs.iter().zip(got) {
                    prop_assert_eq!(g, oracle.get(*k).cloned(), "{} multi_get {:02x?}", label, k);
                }
            }
        }
    }
    // Closing sweep: everything the model holds must be readable, and a
    // full-range scan must agree pair-for-pair.
    for (k, v) in &oracle {
        prop_assert_eq!(w.get(k), Some(v.clone()), "{} closing get", label);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sphinx_edge_keys_match_btreemap(
        steps in proptest::collection::vec(step_strategy(edge_key), 1..60),
    ) {
        run_model(System::Sphinx, &steps)?;
    }

    #[test]
    fn art_edge_keys_match_btreemap(
        steps in proptest::collection::vec(step_strategy(edge_key), 1..50),
    ) {
        run_model(System::Art, &steps)?;
    }

    #[test]
    fn bptree_boundary_keys_match_btreemap(
        steps in proptest::collection::vec(step_strategy(bp_edge_key), 1..60),
    ) {
        run_model(System::BpTree, &steps)?;
    }
}

/// Deterministic boundary checks: both scan edges are inclusive, a
/// degenerate `[k, k]` range returns exactly `k`, and `scan_n` starts at
/// `low` when present and at its successor when absent — for all three
/// systems through the same facade.
#[test]
fn scan_bounds_inclusive_at_both_edges() {
    for system in [System::Sphinx, System::Art, System::BpTree] {
        let handle = system.build(64 << 20, Some(64 << 10));
        let mut w = handle.worker(0);
        let key = |i: u64| i.to_be_bytes().to_vec();
        for i in [10u64, 20, 30] {
            w.insert(&key(i), format!("v{i}").as_bytes());
        }
        let label = system.label();
        assert_eq!(w.scan(&key(10), &key(30)), 3, "{label}: both edges in");
        assert_eq!(w.scan(&key(11), &key(29)), 1, "{label}: interior only");
        assert_eq!(
            w.scan_pairs(&key(20), &key(20)),
            vec![(key(20), b"v20".to_vec())],
            "{label}: degenerate range is the key itself"
        );
        assert_eq!(w.scan(&key(31), &key(9)), 0, "{label}: inverted+empty");
        let from_present = w.scan_n(&key(20), 2);
        assert_eq!(
            from_present
                .iter()
                .map(|(k, _)| k.clone())
                .collect::<Vec<_>>(),
            vec![key(20), key(30)],
            "{label}: scan_n low is inclusive"
        );
        let from_absent = w.scan_n(&key(21), 5);
        assert_eq!(
            from_absent
                .iter()
                .map(|(k, _)| k.clone())
                .collect::<Vec<_>>(),
            vec![key(30)],
            "{label}: scan_n skips to the successor"
        );
    }
}

/// The variable-length corner the B+-tree cannot express: an empty key, a
/// 1-byte key, and two 512-byte keys differing in their last byte coexist
/// and sort correctly.
#[test]
fn extreme_key_lengths_coexist() {
    for system in [System::Sphinx, System::Art] {
        let handle = system.build(64 << 20, Some(64 << 10));
        let mut w = handle.worker(0);
        let long_a = {
            let mut k = vec![7u8; 512];
            k[511] = 1;
            k
        };
        let long_b = {
            let mut k = vec![7u8; 512];
            k[511] = 2;
            k
        };
        w.insert(b"", b"empty");
        w.insert(b"a", b"one");
        w.insert(&long_a, b"LA");
        w.insert(&long_b, b"LB");
        let label = system.label();
        assert_eq!(w.get(b"").as_deref(), Some(&b"empty"[..]), "{label}");
        assert_eq!(w.get(&long_a).as_deref(), Some(&b"LA"[..]), "{label}");
        // Full-range scan: empty key sorts first, the long twins stay
        // distinct and ordered by their last byte.
        let all = w.scan_pairs(b"", &vec![0xFF; 513]);
        let keys: Vec<Vec<u8>> = all.into_iter().map(|(k, _)| k).collect();
        assert_eq!(
            keys,
            vec![Vec::new(), long_a.clone(), long_b.clone(), b"a".to_vec()],
            "{label}: lexicographic order with extreme lengths"
        );
    }
}
