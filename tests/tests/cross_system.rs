//! Cross-system agreement: Sphinx, SMART, SMART+C and ART must produce
//! identical answers on identical operation sequences — they differ only
//! in how many packets it takes.

use bench_harness::systems::System;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use ycsb::{value_for, KeySpace};

#[test]
fn four_systems_agree_on_a_mixed_history() {
    let systems = [System::Sphinx, System::Smart, System::SmartC, System::Art];
    let mut workers: Vec<_> = systems
        .iter()
        .map(|s| {
            let h = s.build(128 << 20, Some(64 << 10));
            (h.worker(0), h)
        })
        .collect();
    let mut oracle: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    let mut rng = SmallRng::seed_from_u64(0xC0FE);

    for step in 0..1500u64 {
        let idx = rng.gen_range(0..400u64);
        let key = KeySpace::Email.key(idx);
        match rng.gen_range(0..10) {
            0..=4 => {
                let value = value_for(idx, step as u32);
                for (w, _) in &mut workers {
                    w.insert(&key, &value);
                }
                oracle.insert(key, value);
            }
            5..=6 => {
                let value = value_for(idx, step as u32 + 1);
                let expect = oracle.contains_key(&key);
                for (w, _) in &mut workers {
                    assert_eq!(
                        w.update(&key, &value),
                        expect,
                        "update disagreement @{step}"
                    );
                }
                if expect {
                    oracle.insert(key, value);
                }
            }
            _ => {
                let expect = oracle.get(&key).cloned();
                for ((w, _), sys) in workers.iter_mut().zip(&systems) {
                    assert_eq!(
                        w.get(&key),
                        expect,
                        "{} disagrees on {:?} @{step}",
                        sys.label(),
                        String::from_utf8_lossy(&key)
                    );
                }
            }
        }
    }

    // Identical full scans at the end.
    let full: Vec<usize> = workers
        .iter_mut()
        .map(|(w, _)| w.scan(b"", &[0xFF; 40]))
        .collect();
    for (count, sys) in full.iter().zip(&systems) {
        assert_eq!(*count, oracle.len(), "{} scan count", sys.label());
    }
}

/// On the u64 dataset all FIVE systems (including the B+-tree extension)
/// must agree on a mixed history.
#[test]
fn five_systems_agree_on_u64_history() {
    let systems = [
        System::Sphinx,
        System::Smart,
        System::SmartC,
        System::Art,
        System::BpTree,
    ];
    let mut workers: Vec<_> = systems
        .iter()
        .map(|s| {
            let h = s.build(128 << 20, Some(64 << 10));
            (h.worker(0), h)
        })
        .collect();
    let mut oracle: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    let mut rng = SmallRng::seed_from_u64(0xB0B5);

    for step in 0..1200u64 {
        let idx = rng.gen_range(0..300u64);
        let key = KeySpace::U64.key(idx);
        match rng.gen_range(0..10) {
            0..=4 => {
                let value = value_for(idx, step as u32);
                for (w, _) in &mut workers {
                    w.insert(&key, &value);
                }
                oracle.insert(key, value);
            }
            5..=6 => {
                let value = value_for(idx, step as u32 + 1);
                let expect = oracle.contains_key(&key);
                for (w, _) in &mut workers {
                    assert_eq!(w.update(&key, &value), expect, "update @{step}");
                }
                if expect {
                    oracle.insert(key, value);
                }
            }
            _ => {
                let expect = oracle.get(&key).cloned();
                for ((w, _), sys) in workers.iter_mut().zip(&systems) {
                    let got = w.get(&key);
                    match (&got, &expect) {
                        (Some(g), Some(e)) => assert_eq!(
                            &g[..e.len().min(g.len())],
                            &e[..e.len().min(g.len())],
                            "{} value mismatch @{step}",
                            sys.label()
                        ),
                        (None, None) => {}
                        _ => panic!(
                            "{} presence disagreement @{step}: got {:?} expected {:?}",
                            sys.label(),
                            got.is_some(),
                            expect.is_some()
                        ),
                    }
                }
            }
        }
    }
    // Identical scan counts over the full range.
    let (lo, hi) = (0u64.to_be_bytes(), u64::MAX.to_be_bytes());
    for ((w, _), sys) in workers.iter_mut().zip(&systems) {
        assert_eq!(w.scan(&lo, &hi), oracle.len(), "{} scan count", sys.label());
    }
}

#[test]
fn ycsb_smoke_every_workload_every_system() {
    use bench_harness::runner::{load_phase, run_phase, RunConfig};
    use ycsb::Workload;

    for sys in System::paper_lineup() {
        let handle = sys.build(128 << 20, Some(16 << 10));
        load_phase(&handle, KeySpace::U64, 1_500, 3);
        for wl in ["A", "B", "C", "D", "E", "LOAD"] {
            let workload = Workload::by_name(wl).expect("workload");
            let r = run_phase(
                &handle,
                &RunConfig {
                    keyspace: KeySpace::U64,
                    num_keys: 1_500,
                    workload,
                    workers: 3,
                    ops_per_worker: if wl == "E" { 15 } else { 80 },
                    warmup_per_worker: 10,
                    seed: 99,
                    pipeline_depth: 1,
                    trace_head_every: 0,
                    trace_tail_k: obs::DEFAULT_TAIL_K,
                    sample_interval_ns: 0,
                    sample_capacity: 0,
                },
            );
            assert!(r.mops > 0.0, "{} {wl}", sys.label());
            assert!(r.round_trips_per_op > 0.5, "{} {wl}", sys.label());
        }
    }
}
