//! SFC warm-start snapshots at the index level: round trips, corruption
//! robustness, and staleness.
//!
//! The contract under test (docs/SFC.md): a CN loading a snapshot either
//! installs it whole (CRC framing verified, generation not stale) or
//! falls back to a cold start with one counted
//! `sfc.gen.snapshot_rejects` telemetry event — a bad snapshot degrades
//! warm-start, it never poisons the cache, corrupts answers, or panics.

use dm_sim::{ClusterConfig, DmCluster};
use sphinx::sfc::{crc32, SnapshotError, MAGIC, VERSION};
use sphinx::{SphinxConfig, SphinxIndex};

fn key(i: u64) -> Vec<u8> {
    format!("tenant-{:04}/record-{:06}", i % 37, i).into_bytes()
}

/// A populated index whose CN-0 filter has a non-trivial frozen
/// generation (insert → teach filter → force a rebuild).
fn warm_index() -> SphinxIndex {
    let cluster = DmCluster::new(ClusterConfig {
        mn_capacity: 64 << 20,
        ..ClusterConfig::default()
    });
    let index = SphinxIndex::create(&cluster, SphinxConfig::small()).unwrap();
    let mut client = index.client(0).unwrap();
    for i in 0..600 {
        client.insert(&key(i), format!("v{i}").as_bytes()).unwrap();
    }
    for i in 0..600 {
        client.get(&key(i)).unwrap();
    }
    client.filter_handle().force_rebuild();
    index
}

/// Re-frames `bytes` with a valid CRC after an in-place payload edit, so
/// a test reaches the checks *behind* the CRC gate.
fn reframe(mut bytes: Vec<u8>) -> Vec<u8> {
    let n = bytes.len();
    let crc = crc32(&bytes[..n - 4]);
    bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
    bytes
}

#[test]
fn snapshot_round_trip_warm_starts_a_joining_cn() {
    let index = warm_index();
    let snap = index.sfc_snapshot(0);
    assert_eq!(&snap[..MAGIC.len()], &MAGIC);
    let frozen_before = index.sfc_stats().frozen_len;
    assert!(
        frozen_before > 0,
        "warm index must have a frozen generation"
    );

    // CN 2 has no workers yet: its filter is created cold by the load.
    index.load_sfc_snapshot(2, &snap).unwrap();
    let stats = index.sfc_stats();
    assert_eq!(stats.snapshot_loads, 1);
    assert_eq!(stats.snapshot_rejects, 0);

    // The warm-started CN answers correctly and its filter already holds
    // the frozen prefix set — no Θ(L) cold-miss ramp.
    let mut joined = index.client(2).unwrap();
    let base = joined.op_stats();
    for i in 0..600 {
        assert_eq!(
            joined.get(&key(i)).unwrap().as_deref(),
            Some(format!("v{i}").as_bytes()),
        );
    }
    let warm = joined.op_stats();
    let gets = warm.gets - base.gets;
    let misses = warm.entry_misses - base.entry_misses;
    assert!(
        (misses as f64) < gets as f64 * 0.10,
        "warm-started CN still ramping: {misses} entry misses over {gets} gets"
    );
}

#[test]
fn corrupt_snapshots_are_rejected_counted_and_never_fatal() {
    let index = warm_index();
    let good = index.sfc_snapshot(0);
    let n = good.len();

    // Truncated at an arbitrary interior point.
    let truncated = good[..n / 2].to_vec();
    // One flipped payload bit (CRC catches it).
    let mut flipped = good.clone();
    flipped[n / 2] ^= 0x40;
    // Foreign bytes entirely.
    let garbage = vec![0xA5u8; 64];
    // Wrong version with a *valid* CRC: rejected by the version gate.
    let mut wrong_version = good.clone();
    wrong_version[MAGIC.len()..MAGIC.len() + 4].copy_from_slice(&99u32.to_le_bytes());
    let wrong_version = reframe(wrong_version);

    let cases: [(&str, &[u8]); 4] = [
        ("truncated", &truncated),
        ("bit-flipped", &flipped),
        ("garbage", &garbage),
        ("wrong-version", &wrong_version),
    ];
    for (i, (what, bytes)) in cases.iter().enumerate() {
        let err = index
            .load_sfc_snapshot(1, bytes)
            .expect_err(&format!("{what} snapshot must be rejected"));
        if *what == "wrong-version" {
            assert_eq!(err, SnapshotError::BadVersion { found: 99 });
        }
        assert_eq!(
            index.sfc_stats().snapshot_rejects,
            i as u64 + 1,
            "{what}: every rejection is one telemetry count"
        );
    }
    assert_eq!(index.sfc_stats().snapshot_loads, 0);
    let reg = index.sfc_telemetry();
    assert_eq!(reg.counter("sfc.gen.snapshot_rejects"), cases.len() as u64);

    // CN 1 stayed cold but fully functional...
    let mut cold = index.client(1).unwrap();
    assert_eq!(cold.get(&key(7)).unwrap().as_deref(), Some(&b"v7"[..]));
    // ...and a good snapshot still installs after all the rejects.
    index.load_sfc_snapshot(1, &good).unwrap();
    assert_eq!(index.sfc_stats().snapshot_loads, 1);
}

#[test]
fn stale_snapshots_do_not_roll_a_cache_back() {
    let index = warm_index();
    let old = index.sfc_snapshot(0);
    let gen_old = index.sfc_stats().generation;

    // Advance CN 0 past the snapshot: new keys, another frozen
    // generation.
    let mut client = index.client(0).unwrap();
    for i in 600..900 {
        client.insert(&key(i), b"later").unwrap();
    }
    client.filter_handle().force_rebuild();
    let gen_new = index.sfc_stats().generation;
    assert!(gen_new > gen_old);

    let err = index.load_sfc_snapshot(0, &old).expect_err("stale");
    assert_eq!(
        err,
        SnapshotError::Stale {
            snapshot: gen_old,
            current: gen_new,
        }
    );
    assert_eq!(index.sfc_stats().snapshot_rejects, 1);
    // The live (newer) generation survived.
    assert_eq!(index.sfc_stats().generation, gen_new);
    let _ = VERSION; // framing constant is part of the public API
}
