//! Workspace integration-test helpers (tests live in tests/tests/).
//!
//! These were extracted from the torture / failure-injection / stress
//! suites once each had grown its own copy: tagged values readers can
//! verify, the SplitMix64 key scrambler, a standard small cluster, and the
//! MN-pool leaf locator the white-box fault tests use.

use dm_sim::{ClusterConfig, DmCluster, RemotePtr};

/// SplitMix64 — the test suites' standard key/seed scrambler (bijective,
/// so scrambled keys stay unique).
pub fn mix64(i: u64) -> u64 {
    let mut x = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A 24-byte value encoding `(thread, round)` so readers can verify every
/// observed value was genuinely written by someone: bytes 0..4 carry the
/// round, byte 4 the thread tag, and bytes 5.. repeat the tag — a torn or
/// spliced value breaks the uniformity.
pub fn tagged_value(thread: u8, round: u32) -> Vec<u8> {
    let mut v = vec![thread; 24];
    v[0..4].copy_from_slice(&round.to_le_bytes());
    v[4] = thread;
    v
}

/// Asserts `v` is a well-formed [`tagged_value`]: right length, one
/// writer's tag throughout.
///
/// # Panics
///
/// Panics (with `context`) if the value is torn or malformed.
pub fn assert_tagged_intact(v: &[u8], context: &str) {
    assert_eq!(v.len(), 24, "{context}: bad value length {}", v.len());
    let tag = v[4];
    assert!(
        v[5..].iter().all(|&b| b == tag),
        "{context}: torn value {v:?}"
    );
}

/// The failure-injection suites' standard cluster: default topology with a
/// 64 MB MN pool.
pub fn small_cluster() -> DmCluster {
    DmCluster::new(ClusterConfig {
        mn_capacity: 64 << 20,
        ..Default::default()
    })
}

/// Finds the leaf address for `(key, value)` by scanning the MN pools for
/// its encoded form (white-box test trick: values are unique, so the
/// encoded leaf is too).
///
/// # Panics
///
/// Panics if no pool contains the leaf.
pub fn find_leaf_ptr(cluster: &DmCluster, key: &[u8], value: &[u8]) -> RemotePtr {
    let needle = art_core::layout::LeafNode::new(key.to_vec(), value.to_vec()).encode();
    for mn_id in 0..cluster.num_mns() {
        let mn = cluster.mn(mn_id).unwrap();
        let cap = mn.capacity();
        let mut buf = vec![0u8; cap];
        mn.read_bytes(0, &mut buf).unwrap();
        if let Some(pos) = buf.windows(needle.len()).position(|w| w == needle) {
            return RemotePtr::new(mn_id, pos as u64);
        }
    }
    panic!("leaf not found in any pool");
}
