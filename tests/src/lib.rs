//! Workspace integration-test helpers (tests live in tests/tests/).
